"""Declarative fault schedules for the chaos harness.

A :class:`FaultSchedule` is a scripted, deterministic description of
what goes wrong during a simulation run — which stages degrade and
when, which execution overruns occur, which controller notifications
get lost, and where arrival bursts land.  The schedule is pure data;
:class:`repro.faults.injector.FaultInjector` applies it to a
:class:`~repro.sim.pipeline.PipelineSimulation` through the existing
event loop and public callback hooks, never by forking the engine.

Each fault model deliberately violates one assumption behind the
paper's zero-miss guarantee (see DESIGN.md §8):

========================  =============================================
Fault                     Violated assumption
========================  =============================================
:class:`StageSlowdown`    Fixed, known stage capacity
:class:`StageOutage`      Stage availability (capacity > 0)
:class:`ExecutionOverrun` Exact declared demand ``C_ij``
:class:`DropNotification` Reliable bookkeeping notifications (Sec. 4)
:class:`ArrivalBurst`     No assumption — admission must absorb it
========================  =============================================

The *network* fault family extends the same pure-data discipline to
the serving fleet's control plane (see DESIGN.md §13).  Each model
breaks one assumption of the distributed admission protocol; the fleet
chaos harness (:mod:`repro.serve.fleetchaos`) applies a
:class:`NetworkFaultSchedule` deterministically, so every chaos run is
replayable from its seed:

========================  =============================================
Fault                     Violated assumption
========================  =============================================
:class:`TornFrame`        Requests arrive as whole NDJSON frames
:class:`PartialWrite`     One logical write is one wire frame
:class:`SlowClientStall`  Responses arrive before the client retries
:class:`ConnectionStorm`  Bounded concurrent connection churn
:class:`WorkerKill`       The admission worker process stays alive
========================  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "StageSlowdown",
    "StageOutage",
    "ExecutionOverrun",
    "DropNotification",
    "ArrivalBurst",
    "FaultSchedule",
    "WORKER_KILL_KINDS",
    "WORKER_KILL_DETECTIONS",
    "TornFrame",
    "PartialWrite",
    "SlowClientStall",
    "ConnectionStorm",
    "WorkerKill",
    "NetworkFaultSchedule",
]


def _check_window(start: float, end: float, what: str) -> None:
    if not (0.0 <= start < end):
        raise ValueError(f"{what}: need 0 <= start < end, got [{start}, {end})")


@dataclass(frozen=True)
class StageSlowdown:
    """One stage serves at a fraction of nominal speed during a window.

    Attributes:
        stage: Degraded stage index.
        start: Window start (inclusive).
        end: Window end (exclusive).
        factor: Remaining capacity in ``(0, 1)``; jobs dispatched during
            the window execute ``1 / factor`` times longer.
    """

    stage: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "StageSlowdown")
        if not (0.0 < self.factor < 1.0):
            raise ValueError(f"slowdown factor must be in (0, 1), got {self.factor}")

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class StageOutage:
    """One stage processes nothing during a window.

    Modeled as a maximal-priority blocker job occupying the stage for
    the whole window: in-flight work is preempted (frozen) and resumes
    when the outage lifts — the resource is down, the work is not lost.

    Attributes:
        stage: Failed stage index.
        start: Outage start.
        end: Outage end.
    """

    stage: int
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "StageOutage")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ExecutionOverrun:
    """Tasks execute longer than the demand they declared at admission.

    Selected tasks (an independent seeded coin flip per task) run
    ``factor`` times their declared per-stage computation times, while
    the admission test still charges the declared amounts — modeling
    optimistic WCET declarations.

    Attributes:
        factor: Execution-time multiplier (> 1 overruns; 1 is a no-op).
        probability: Per-task selection probability in ``[0, 1]``.
        start: Only tasks arriving at or after this time are eligible.
        end: Only tasks arriving before this time are eligible.
    """

    factor: float
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0 or not math.isfinite(self.factor):
            raise ValueError(f"overrun factor must be finite and >= 1, got {self.factor}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")

    def applies_to_arrival(self, arrival_time: float) -> bool:
        return self.start <= arrival_time < self.end


@dataclass(frozen=True)
class DropNotification:
    """Controller bookkeeping notifications are lost.

    Attributes:
        kind: ``"departure"`` (lost ``notify_subtask_departure``) or
            ``"idle"`` (lost ``notify_stage_idle``).
        probability: Per-notification drop probability in ``(0, 1]``.
        start: Window start.
        end: Window end.
        stage: Restrict the fault to one stage (``None`` = all stages).
    """

    kind: str
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf
    stage: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("departure", "idle"):
            raise ValueError(f"kind must be 'departure' or 'idle', got {self.kind!r}")
        if not (0.0 < self.probability <= 1.0):
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")

    def matches(self, time: float, stage: int) -> bool:
        if not (self.start <= time < self.end):
            return False
        return self.stage is None or self.stage == stage


@dataclass(frozen=True)
class ArrivalBurst:
    """A batch of simultaneous extra arrivals at one instant.

    Attributes:
        time: Burst instant.
        count: Number of injected tasks (> 0).
        deadline: Relative end-to-end deadline of every burst task.
        mean_costs: Mean exponential per-stage computation times; the
            injector draws actual costs from its seeded RNG.
        importance: Semantic importance of the burst tasks.
    """

    time: float
    count: int
    deadline: float
    mean_costs: Tuple[float, ...]
    importance: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"burst time must be >= 0, got {self.time}")
        if self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")
        if self.deadline <= 0:
            raise ValueError(f"burst deadline must be > 0, got {self.deadline}")
        if not self.mean_costs or any(c < 0 for c in self.mean_costs):
            raise ValueError("burst mean costs must be non-empty and >= 0")


# ----------------------------------------------------------------------
# Network / control-plane faults (serving fleet)
# ----------------------------------------------------------------------

#: Crash points of a worker kill, mirroring the PR-4 journal crash
#: kinds: mid-journal-write, between journal append and the in-memory
#: mutation, and after the mutation but before response delivery.
WORKER_KILL_KINDS = ("torn", "after_journal", "after_apply")

#: How the supervisor learns about the kill: the process exit is
#: observed directly, or the worker just stops answering seq-stamped
#: heartbeats and is declared dead after the miss threshold.
WORKER_KILL_DETECTIONS = ("exit", "heartbeat")


def _check_at_op(at_op: int, what: str) -> None:
    if at_op < 0:
        raise ValueError(f"{what}: at_op must be >= 0, got {at_op}")


@dataclass(frozen=True)
class TornFrame:
    """A request frame cut mid-record; the remainder never arrives.

    Models a connection dying mid-write: the worker's framing layer
    sees a prefix of the NDJSON line (no terminator follows before the
    drop).  The fragment must produce a structured error — never an
    unhandled exception, never a journal record — and the client's
    idempotent retry re-sends the whole frame.

    Attributes:
        at_op: Op index (within one chaos cycle) whose frame is torn.
        keep: Fraction of the line that reaches the worker, in (0, 1).
    """

    at_op: int
    keep: float = 0.5

    def __post_init__(self) -> None:
        _check_at_op(self.at_op, "TornFrame")
        if not (0.0 < self.keep < 1.0):
            raise ValueError(f"TornFrame keep must be in (0, 1), got {self.keep}")


@dataclass(frozen=True)
class PartialWrite:
    """One logical write delivered as two broken frames.

    Models a crashed buffering layer flushing mid-line: the worker
    receives the line's head and tail as *separate* frames, each
    invalid on its own.  Both fragments must yield structured errors,
    and neither may reach the write-ahead journal.

    Attributes:
        at_op: Op index (within one chaos cycle) whose write splits.
        cut: Fraction of the line in the first fragment, in (0, 1).
    """

    at_op: int
    cut: float = 0.5

    def __post_init__(self) -> None:
        _check_at_op(self.at_op, "PartialWrite")
        if not (0.0 < self.cut < 1.0):
            raise ValueError(f"PartialWrite cut must be in (0, 1), got {self.cut}")


@dataclass(frozen=True)
class SlowClientStall:
    """The response arrives so late the client has already retried.

    Exercises live deduplication: the retry (same ``rid``) must be
    served the cached decision, bitwise identical to the original.

    Attributes:
        at_op: Op index (within one chaos cycle) whose response stalls.
        retries: Redundant retries the impatient client issues (>= 1).
    """

    at_op: int
    retries: int = 1

    def __post_init__(self) -> None:
        _check_at_op(self.at_op, "SlowClientStall")
        if self.retries < 1:
            raise ValueError(
                f"SlowClientStall retries must be >= 1, got {self.retries}"
            )


@dataclass(frozen=True)
class ConnectionStorm:
    """A burst of reconnects hammering one worker.

    Models thundering-herd reconnection after a network partition
    heals: a flurry of fresh connections each probing liveness and
    re-asking for a recent decision.  The worker must answer every
    probe consistently and must not double-apply the re-asked op.

    Attributes:
        at_op: Op index (within one chaos cycle) where the storm lands.
        count: Connections in the storm (>= 1).
    """

    at_op: int
    count: int = 4

    def __post_init__(self) -> None:
        _check_at_op(self.at_op, "ConnectionStorm")
        if self.count < 1:
            raise ValueError(f"ConnectionStorm count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL one fleet worker at a scheduled op.

    Attributes:
        at_op: Op index (within one chaos cycle) at which the worker
            dies; the cycle's remaining ops are abandoned (clients
            retry them after failover).
        worker: Shard index of the killed worker.
        kind: Crash point, one of :data:`WORKER_KILL_KINDS`.
        detect: Supervisor detection path, one of
            :data:`WORKER_KILL_DETECTIONS`.
    """

    at_op: int
    worker: int
    kind: str = "torn"
    detect: str = "exit"

    def __post_init__(self) -> None:
        _check_at_op(self.at_op, "WorkerKill")
        if self.worker < 0:
            raise ValueError(f"WorkerKill worker must be >= 0, got {self.worker}")
        if self.kind not in WORKER_KILL_KINDS:
            raise ValueError(
                f"WorkerKill kind must be one of {WORKER_KILL_KINDS}, "
                f"got {self.kind!r}"
            )
        if self.detect not in WORKER_KILL_DETECTIONS:
            raise ValueError(
                f"WorkerKill detect must be one of {WORKER_KILL_DETECTIONS}, "
                f"got {self.detect!r}"
            )


@dataclass(frozen=True)
class NetworkFaultSchedule:
    """The scripted network-fault load of one fleet chaos cycle.

    Pure data, like :class:`FaultSchedule`: the fleet chaos harness
    applies it through the protocol layer, never by forking the
    gateway.  Sorted-tuple normalization keeps the injection order
    independent of construction order, so a schedule (plus the op
    stream's seed) fully determines the run.
    """

    torn_frames: Tuple[TornFrame, ...] = field(default_factory=tuple)
    partial_writes: Tuple[PartialWrite, ...] = field(default_factory=tuple)
    stalls: Tuple[SlowClientStall, ...] = field(default_factory=tuple)
    storms: Tuple[ConnectionStorm, ...] = field(default_factory=tuple)
    kills: Tuple[WorkerKill, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "torn_frames",
            tuple(sorted(self.torn_frames, key=lambda f: (f.at_op, f.keep))),
        )
        object.__setattr__(
            self,
            "partial_writes",
            tuple(sorted(self.partial_writes, key=lambda f: (f.at_op, f.cut))),
        )
        object.__setattr__(
            self,
            "stalls",
            tuple(sorted(self.stalls, key=lambda f: (f.at_op, f.retries))),
        )
        object.__setattr__(
            self,
            "storms",
            tuple(sorted(self.storms, key=lambda f: (f.at_op, f.count))),
        )
        object.__setattr__(
            self,
            "kills",
            tuple(sorted(self.kills, key=lambda f: (f.at_op, f.worker))),
        )

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing."""
        return not (
            self.torn_frames
            or self.partial_writes
            or self.stalls
            or self.storms
            or self.kills
        )

    def counts(self) -> dict:
        """Fault counts by family (report bookkeeping)."""
        return {
            "torn_frames": len(self.torn_frames),
            "partial_writes": len(self.partial_writes),
            "stalls": len(self.stalls),
            "storms": len(self.storms),
            "kills": len(self.kills),
        }


@dataclass(frozen=True)
class FaultSchedule:
    """The full scripted fault load of one chaos run.

    An empty schedule is a valid (and useful) degenerate case: the
    injector then only audits, and results must match a fault-free run
    exactly.
    """

    slowdowns: Tuple[StageSlowdown, ...] = field(default_factory=tuple)
    outages: Tuple[StageOutage, ...] = field(default_factory=tuple)
    overruns: Tuple[ExecutionOverrun, ...] = field(default_factory=tuple)
    drops: Tuple[DropNotification, ...] = field(default_factory=tuple)
    bursts: Tuple[ArrivalBurst, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Normalize: accept any iterable, store sorted tuples so the
        # injection event order is independent of construction order.
        object.__setattr__(
            self, "slowdowns", tuple(sorted(self.slowdowns, key=lambda f: (f.start, f.stage)))
        )
        object.__setattr__(
            self, "outages", tuple(sorted(self.outages, key=lambda f: (f.start, f.stage)))
        )
        object.__setattr__(
            self, "overruns", tuple(sorted(self.overruns, key=lambda f: (f.start, f.factor)))
        )
        object.__setattr__(
            self,
            "drops",
            tuple(sorted(self.drops, key=lambda f: (f.start, f.kind, -1 if f.stage is None else f.stage))),
        )
        object.__setattr__(
            self, "bursts", tuple(sorted(self.bursts, key=lambda f: (f.time, f.count)))
        )

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing."""
        return not (
            self.slowdowns or self.outages or self.overruns or self.drops or self.bursts
        )

    def drops_of_kind(self, kind: str) -> Tuple[DropNotification, ...]:
        """The drop faults matching ``kind`` (``"departure"``/``"idle"``)."""
        return tuple(f for f in self.drops if f.kind == kind)
