"""Declarative fault schedules for the chaos harness.

A :class:`FaultSchedule` is a scripted, deterministic description of
what goes wrong during a simulation run — which stages degrade and
when, which execution overruns occur, which controller notifications
get lost, and where arrival bursts land.  The schedule is pure data;
:class:`repro.faults.injector.FaultInjector` applies it to a
:class:`~repro.sim.pipeline.PipelineSimulation` through the existing
event loop and public callback hooks, never by forking the engine.

Each fault model deliberately violates one assumption behind the
paper's zero-miss guarantee (see DESIGN.md §8):

========================  =============================================
Fault                     Violated assumption
========================  =============================================
:class:`StageSlowdown`    Fixed, known stage capacity
:class:`StageOutage`      Stage availability (capacity > 0)
:class:`ExecutionOverrun` Exact declared demand ``C_ij``
:class:`DropNotification` Reliable bookkeeping notifications (Sec. 4)
:class:`ArrivalBurst`     No assumption — admission must absorb it
========================  =============================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "StageSlowdown",
    "StageOutage",
    "ExecutionOverrun",
    "DropNotification",
    "ArrivalBurst",
    "FaultSchedule",
]


def _check_window(start: float, end: float, what: str) -> None:
    if not (0.0 <= start < end):
        raise ValueError(f"{what}: need 0 <= start < end, got [{start}, {end})")


@dataclass(frozen=True)
class StageSlowdown:
    """One stage serves at a fraction of nominal speed during a window.

    Attributes:
        stage: Degraded stage index.
        start: Window start (inclusive).
        end: Window end (exclusive).
        factor: Remaining capacity in ``(0, 1)``; jobs dispatched during
            the window execute ``1 / factor`` times longer.
    """

    stage: int
    start: float
    end: float
    factor: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "StageSlowdown")
        if not (0.0 < self.factor < 1.0):
            raise ValueError(f"slowdown factor must be in (0, 1), got {self.factor}")

    def active_at(self, time: float) -> bool:
        return self.start <= time < self.end


@dataclass(frozen=True)
class StageOutage:
    """One stage processes nothing during a window.

    Modeled as a maximal-priority blocker job occupying the stage for
    the whole window: in-flight work is preempted (frozen) and resumes
    when the outage lifts — the resource is down, the work is not lost.

    Attributes:
        stage: Failed stage index.
        start: Outage start.
        end: Outage end.
    """

    stage: int
    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end, "StageOutage")

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class ExecutionOverrun:
    """Tasks execute longer than the demand they declared at admission.

    Selected tasks (an independent seeded coin flip per task) run
    ``factor`` times their declared per-stage computation times, while
    the admission test still charges the declared amounts — modeling
    optimistic WCET declarations.

    Attributes:
        factor: Execution-time multiplier (> 1 overruns; 1 is a no-op).
        probability: Per-task selection probability in ``[0, 1]``.
        start: Only tasks arriving at or after this time are eligible.
        end: Only tasks arriving before this time are eligible.
    """

    factor: float
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.factor < 1.0 or not math.isfinite(self.factor):
            raise ValueError(f"overrun factor must be finite and >= 1, got {self.factor}")
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")

    def applies_to_arrival(self, arrival_time: float) -> bool:
        return self.start <= arrival_time < self.end


@dataclass(frozen=True)
class DropNotification:
    """Controller bookkeeping notifications are lost.

    Attributes:
        kind: ``"departure"`` (lost ``notify_subtask_departure``) or
            ``"idle"`` (lost ``notify_stage_idle``).
        probability: Per-notification drop probability in ``(0, 1]``.
        start: Window start.
        end: Window end.
        stage: Restrict the fault to one stage (``None`` = all stages).
    """

    kind: str
    probability: float = 1.0
    start: float = 0.0
    end: float = math.inf
    stage: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("departure", "idle"):
            raise ValueError(f"kind must be 'departure' or 'idle', got {self.kind!r}")
        if not (0.0 < self.probability <= 1.0):
            raise ValueError(f"probability must be in (0, 1], got {self.probability}")
        if not (0.0 <= self.start < self.end):
            raise ValueError(f"need 0 <= start < end, got [{self.start}, {self.end})")

    def matches(self, time: float, stage: int) -> bool:
        if not (self.start <= time < self.end):
            return False
        return self.stage is None or self.stage == stage


@dataclass(frozen=True)
class ArrivalBurst:
    """A batch of simultaneous extra arrivals at one instant.

    Attributes:
        time: Burst instant.
        count: Number of injected tasks (> 0).
        deadline: Relative end-to-end deadline of every burst task.
        mean_costs: Mean exponential per-stage computation times; the
            injector draws actual costs from its seeded RNG.
        importance: Semantic importance of the burst tasks.
    """

    time: float
    count: int
    deadline: float
    mean_costs: Tuple[float, ...]
    importance: int = 0

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"burst time must be >= 0, got {self.time}")
        if self.count < 1:
            raise ValueError(f"burst count must be >= 1, got {self.count}")
        if self.deadline <= 0:
            raise ValueError(f"burst deadline must be > 0, got {self.deadline}")
        if not self.mean_costs or any(c < 0 for c in self.mean_costs):
            raise ValueError("burst mean costs must be non-empty and >= 0")


@dataclass(frozen=True)
class FaultSchedule:
    """The full scripted fault load of one chaos run.

    An empty schedule is a valid (and useful) degenerate case: the
    injector then only audits, and results must match a fault-free run
    exactly.
    """

    slowdowns: Tuple[StageSlowdown, ...] = field(default_factory=tuple)
    outages: Tuple[StageOutage, ...] = field(default_factory=tuple)
    overruns: Tuple[ExecutionOverrun, ...] = field(default_factory=tuple)
    drops: Tuple[DropNotification, ...] = field(default_factory=tuple)
    bursts: Tuple[ArrivalBurst, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        # Normalize: accept any iterable, store sorted tuples so the
        # injection event order is independent of construction order.
        object.__setattr__(
            self, "slowdowns", tuple(sorted(self.slowdowns, key=lambda f: (f.start, f.stage)))
        )
        object.__setattr__(
            self, "outages", tuple(sorted(self.outages, key=lambda f: (f.start, f.stage)))
        )
        object.__setattr__(
            self, "overruns", tuple(sorted(self.overruns, key=lambda f: (f.start, f.factor)))
        )
        object.__setattr__(
            self,
            "drops",
            tuple(sorted(self.drops, key=lambda f: (f.start, f.kind, -1 if f.stage is None else f.stage))),
        )
        object.__setattr__(
            self, "bursts", tuple(sorted(self.bursts, key=lambda f: (f.time, f.count)))
        )

    @property
    def empty(self) -> bool:
        """True when the schedule injects nothing."""
        return not (
            self.slowdowns or self.outages or self.overruns or self.drops or self.bursts
        )

    def drops_of_kind(self, kind: str) -> Tuple[DropNotification, ...]:
        """The drop faults matching ``kind`` (``"departure"``/``"idle"``)."""
        return tuple(f for f in self.drops if f.kind == kind)
