"""Deterministic JSON rendering for chaos-harness results.

The acceptance bar for the harness is byte-identical output for a
given ``(scenario set, seed)`` pair, so rendering is intentionally
rigid: keys are sorted, floats keep their shortest-repr form (no
formatting that could vary by locale or platform), and nothing
time- or environment-dependent enters the payload.
"""

from __future__ import annotations

import json
from typing import Dict, List

__all__ = ["build_payload", "render_report"]


def build_payload(
    results: Dict[str, Dict[str, object]], seed: int
) -> Dict[str, object]:
    """Assemble the report payload from per-scenario results."""
    return {
        "harness": "repro.faults",
        "seed": seed,
        "scenario_count": len(results),
        "scenarios": results,
    }


def render_report(results: Dict[str, Dict[str, object]], seed: int) -> str:
    """Render results as canonical JSON (sorted keys, 2-space indent)."""
    return json.dumps(build_payload(results, seed), indent=2, sort_keys=True)


def summarize_lines(results: Dict[str, Dict[str, object]]) -> List[str]:
    """One human-readable line per scenario (for stderr progress)."""
    lines = []
    for name, result in results.items():
        points = result.get("points", [])
        lines.append(f"{name}: {len(points)} point(s) — {result.get('description', '')}")
    return lines
