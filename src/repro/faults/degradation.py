"""Graceful-degradation policies layered on top of admission control.

Three mechanisms for keeping *useful* guarantees when the paper's
assumptions crack under faults or overload:

- capacity-aware region rescaling lives in the controller itself
  (:meth:`~repro.core.admission.PipelineAdmissionController.set_stage_capacity`);
  the injector drives it from slowdown/outage windows;
- :class:`BackoffAdmission` — deadline-aware admission retry with
  bounded exponential backoff: a rejected arrival is retried while a
  later admission could still meet its deadline, instead of being
  dropped on first contact with a transient fault;
- :class:`BrownoutController` — webserver brownout: under sustained
  overload, whole request classes are shed in increasing order of
  importance *before* the admission test, keeping the region's headroom
  for the traffic that matters; the shed level decays when load
  subsides.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Tuple

from ..core.numeric import approx_le
from ..core.task import PipelineTask
from ..sim.pipeline import PipelineSimulation

__all__ = [
    "BackoffPolicy",
    "BackoffAdmission",
    "BrownoutConfig",
    "BrownoutController",
]


# ----------------------------------------------------------------------
# Deadline-aware admission retry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff for admission retries.

    Attributes:
        base_delay: Delay before the first retry (> 0).
        multiplier: Geometric growth factor per retry (>= 1).
        max_attempts: Total admission attempts, the initial one
            included (>= 1).
    """

    base_delay: float
    multiplier: float = 2.0
    max_attempts: int = 6

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be > 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Delay after the ``attempt``-th failed attempt (0-based)."""
        return self.base_delay * self.multiplier**attempt


class BackoffAdmission:
    """Offers tasks with deadline-aware bounded-backoff retries.

    A rejected arrival is re-offered after an exponentially growing
    delay, but only while the retry is *worth taking*: once
    ``retry_time + sum_j C_ij`` can no longer meet the task's absolute
    deadline, retrying would only admit a guaranteed miss, so the task
    is abandoned instead.  This replaces the pipeline's FIFO admission
    queue (do not combine with ``max_admission_wait > 0``).

    Attributes:
        admitted_first_try / admitted_after_retry / abandoned: Counters.
    """

    def __init__(self, pipeline: PipelineSimulation, policy: BackoffPolicy) -> None:
        if pipeline.max_admission_wait > 0:
            raise ValueError(
                "BackoffAdmission replaces the admission wait queue; "
                "build the pipeline with max_admission_wait=0"
            )
        self.pipeline = pipeline
        self.policy = policy
        self.admitted_first_try = 0
        self.admitted_after_retry = 0
        self.abandoned = 0

    def offer_at(self, task: PipelineTask) -> None:
        """Schedule the task's first admission attempt at its arrival."""
        self.pipeline.sim.at(task.arrival_time, self._attempt, task, 0)

    def offer_stream(self, tasks: Iterable[PipelineTask]) -> int:
        """Schedule a whole arrival stream; returns the number offered."""
        count = 0
        for task in tasks:
            self.offer_at(task)
            count += 1
        return count

    def _attempt(self, task: PipelineTask, attempt: int) -> None:
        pipeline = self.pipeline
        if attempt == 0:
            record = pipeline._record(task)
        else:
            record = pipeline.records[task.task_id]
        if pipeline._try_admit(task, record):
            if attempt == 0:
                self.admitted_first_try += 1
            else:
                self.admitted_after_retry += 1
            return
        next_time = pipeline.sim.now + self.policy.delay(attempt)
        remaining_work = sum(task.computation_times)
        if attempt + 1 >= self.policy.max_attempts or not approx_le(
            next_time + remaining_work, task.absolute_deadline
        ):
            # Deadline-aware bound: a later admission could no longer
            # finish in time even on an empty pipeline — stop retrying.
            self.abandoned += 1
            return
        pipeline.sim.at(next_time, self._attempt, task, attempt + 1)


# ----------------------------------------------------------------------
# Brownout: importance-class shedding under sustained overload
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BrownoutConfig:
    """Brownout control-loop parameters.

    Attributes:
        max_level: Highest shed level; level ``k`` drops every arrival
            with importance ``< k``, so ``max_level`` should equal the
            highest importance class (which is then never shed).
        window: Sliding window (time units) over which the reject ratio
            is measured.
        evaluation_period: How often the shed level is reconsidered.
        enter_reject_ratio: Raise the shed level when the windowed
            reject ratio exceeds this.
        exit_reject_ratio: Lower the shed level when the windowed
            reject ratio falls below this.
        min_samples: Do not change level on fewer windowed outcomes.
    """

    max_level: int
    window: float = 2.0
    evaluation_period: float = 0.5
    enter_reject_ratio: float = 0.15
    exit_reject_ratio: float = 0.02
    min_samples: int = 20

    def __post_init__(self) -> None:
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")
        if self.window <= 0 or self.evaluation_period <= 0:
            raise ValueError("window and evaluation_period must be > 0")
        if not (0.0 <= self.exit_reject_ratio < self.enter_reject_ratio <= 1.0):
            raise ValueError(
                "need 0 <= exit_reject_ratio < enter_reject_ratio <= 1, got "
                f"{self.exit_reject_ratio} / {self.enter_reject_ratio}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class BrownoutController:
    """Sheds low-importance arrivals while admission pressure persists.

    The control loop watches the reject ratio of attempted admissions
    over a sliding window.  Sustained pressure raises the *shed level*
    one importance class at a time; arrivals below the level are
    dropped before the admission test (cheap, and keeps the region's
    headroom for important traffic).  When pressure subsides the level
    steps back down, restoring full service.

    Attributes:
        level: Current shed level (0 = everything served).
        browned_out: Arrivals dropped by the brownout gate, total.
        browned_out_by_importance: Same, per importance class.
        level_history: ``(time, level)`` transitions, starting implicit
            at ``(0, 0)``.
    """

    def __init__(self, pipeline: PipelineSimulation, config: BrownoutConfig) -> None:
        self.pipeline = pipeline
        self.config = config
        self.level = 0
        self.browned_out = 0
        self.browned_out_by_importance: Dict[int, int] = {}
        self.level_history: List[Tuple[float, int]] = []
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._installed = False

    def install(self) -> "BrownoutController":
        """Arm the periodic control-loop evaluation."""
        if self._installed:
            raise RuntimeError("BrownoutController.install called twice")
        self._installed = True
        self.pipeline.sim.after(self.config.evaluation_period, self._evaluate)
        return self

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------

    def offer_at(self, task: PipelineTask) -> None:
        """Schedule the task's (gated) arrival."""
        self.pipeline.sim.at(task.arrival_time, self._gated_arrive, task)

    def offer_stream(self, tasks: Iterable[PipelineTask]) -> int:
        """Schedule a whole request stream; returns the number offered."""
        count = 0
        for task in tasks:
            self.offer_at(task)
            count += 1
        return count

    def _gated_arrive(self, task: PipelineTask) -> None:
        if task.importance < self.level:
            # Browned out: recorded as a non-admitted offer, but never
            # charged against the admission test.
            self.pipeline._record(task)
            self.browned_out += 1
            self.browned_out_by_importance[task.importance] = (
                self.browned_out_by_importance.get(task.importance, 0) + 1
            )
            return
        self.pipeline._arrive(task)
        record = self.pipeline.records[task.task_id]
        self._outcomes.append((self.pipeline.sim.now, record.admitted))

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def _evaluate(self) -> None:
        now = self.pipeline.sim.now
        cutoff = now - self.config.window
        while self._outcomes and self._outcomes[0][0] < cutoff:
            self._outcomes.popleft()
        total = len(self._outcomes)
        if total >= self.config.min_samples:
            rejected = sum(1 for _, admitted in self._outcomes if not admitted)
            ratio = rejected / total
            if ratio > self.config.enter_reject_ratio and self.level < self.config.max_level:
                self.level += 1
                self.level_history.append((now, self.level))
            elif ratio < self.config.exit_reject_ratio and self.level > 0:
                self.level -= 1
                self.level_history.append((now, self.level))
        self.pipeline.sim.after(self.config.evaluation_period, self._evaluate)
