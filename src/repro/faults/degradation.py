"""Graceful-degradation policies layered on top of admission control.

Three mechanisms for keeping *useful* guarantees when the paper's
assumptions crack under faults or overload:

- capacity-aware region rescaling lives in the controller itself
  (:meth:`~repro.core.admission.PipelineAdmissionController.set_stage_capacity`);
  the injector drives it from slowdown/outage windows;
- :class:`BackoffAdmission` — deadline-aware admission retry with
  bounded exponential backoff: a rejected arrival is retried while a
  later admission could still meet its deadline, instead of being
  dropped on first contact with a transient fault;
- :class:`BrownoutController` — webserver brownout: under sustained
  overload, whole request classes are shed in increasing order of
  importance *before* the admission test, keeping the region's headroom
  for the traffic that matters; the shed level decays when load
  subsides;
- :class:`CapacityEstimator` — hysteresis-filtered per-stage capacity
  estimation from overrun/slowdown fault observations: the serving
  layer's :class:`~repro.serve.degradation.DegradationManager` feeds it
  raw samples and only acts (rescale + region repair) once a quantized
  capacity level is confirmed by enough consecutive observations, so
  transient blips never thrash the admitted set.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Iterable, List, Optional, Tuple

from ..core.numeric import approx_le
from ..core.task import PipelineTask
from ..sim.pipeline import PipelineSimulation

__all__ = [
    "BackoffPolicy",
    "BackoffAdmission",
    "BrownoutConfig",
    "BrownoutController",
    "CapacityHysteresis",
    "CapacityEstimator",
]


# ----------------------------------------------------------------------
# Deadline-aware admission retry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BackoffPolicy:
    """Bounded exponential backoff for admission retries.

    Attributes:
        base_delay: Delay before the first retry (> 0).
        multiplier: Geometric growth factor per retry (>= 1).
        max_attempts: Total admission attempts, the initial one
            included (>= 1).
    """

    base_delay: float
    multiplier: float = 2.0
    max_attempts: int = 6

    def __post_init__(self) -> None:
        if self.base_delay <= 0:
            raise ValueError(f"base_delay must be > 0, got {self.base_delay}")
        if self.multiplier < 1.0:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")

    def delay(self, attempt: int) -> float:
        """Delay after the ``attempt``-th failed attempt (0-based)."""
        return self.base_delay * self.multiplier**attempt


class BackoffAdmission:
    """Offers tasks with deadline-aware bounded-backoff retries.

    A rejected arrival is re-offered after an exponentially growing
    delay, but only while the retry is *worth taking*: once
    ``retry_time + sum_j C_ij`` can no longer meet the task's absolute
    deadline, retrying would only admit a guaranteed miss, so the task
    is abandoned instead.  This replaces the pipeline's FIFO admission
    queue (do not combine with ``max_admission_wait > 0``).

    Attributes:
        admitted_first_try / admitted_after_retry / abandoned: Counters.
    """

    def __init__(self, pipeline: PipelineSimulation, policy: BackoffPolicy) -> None:
        if pipeline.max_admission_wait > 0:
            raise ValueError(
                "BackoffAdmission replaces the admission wait queue; "
                "build the pipeline with max_admission_wait=0"
            )
        self.pipeline = pipeline
        self.policy = policy
        self.admitted_first_try = 0
        self.admitted_after_retry = 0
        self.abandoned = 0

    def offer_at(self, task: PipelineTask) -> None:
        """Schedule the task's first admission attempt at its arrival."""
        self.pipeline.sim.at(task.arrival_time, self._attempt, task, 0)

    def offer_stream(self, tasks: Iterable[PipelineTask]) -> int:
        """Schedule a whole arrival stream; returns the number offered."""
        count = 0
        for task in tasks:
            self.offer_at(task)
            count += 1
        return count

    def _attempt(self, task: PipelineTask, attempt: int) -> None:
        pipeline = self.pipeline
        if attempt == 0:
            record = pipeline._record(task)
        else:
            record = pipeline.records[task.task_id]
        if pipeline._try_admit(task, record):
            if attempt == 0:
                self.admitted_first_try += 1
            else:
                self.admitted_after_retry += 1
            return
        next_time = pipeline.sim.now + self.policy.delay(attempt)
        remaining_work = sum(task.computation_times)
        if attempt + 1 >= self.policy.max_attempts or not approx_le(
            next_time + remaining_work, task.absolute_deadline
        ):
            # Deadline-aware bound: a later admission could no longer
            # finish in time even on an empty pipeline — stop retrying.
            self.abandoned += 1
            return
        pipeline.sim.at(next_time, self._attempt, task, attempt + 1)


# ----------------------------------------------------------------------
# Brownout: importance-class shedding under sustained overload
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class BrownoutConfig:
    """Brownout control-loop parameters.

    Attributes:
        max_level: Highest shed level; level ``k`` drops every arrival
            with importance ``< k``, so ``max_level`` should equal the
            highest importance class (which is then never shed).
        window: Sliding window (time units) over which the reject ratio
            is measured.
        evaluation_period: How often the shed level is reconsidered.
        enter_reject_ratio: Raise the shed level when the windowed
            reject ratio exceeds this.
        exit_reject_ratio: Lower the shed level when the windowed
            reject ratio falls below this.
        min_samples: Do not change level on fewer windowed outcomes.
    """

    max_level: int
    window: float = 2.0
    evaluation_period: float = 0.5
    enter_reject_ratio: float = 0.15
    exit_reject_ratio: float = 0.02
    min_samples: int = 20

    def __post_init__(self) -> None:
        if self.max_level < 1:
            raise ValueError(f"max_level must be >= 1, got {self.max_level}")
        if self.window <= 0 or self.evaluation_period <= 0:
            raise ValueError("window and evaluation_period must be > 0")
        if not (0.0 <= self.exit_reject_ratio < self.enter_reject_ratio <= 1.0):
            raise ValueError(
                "need 0 <= exit_reject_ratio < enter_reject_ratio <= 1, got "
                f"{self.exit_reject_ratio} / {self.enter_reject_ratio}"
            )
        if self.min_samples < 1:
            raise ValueError(f"min_samples must be >= 1, got {self.min_samples}")


class BrownoutController:
    """Sheds low-importance arrivals while admission pressure persists.

    The control loop watches the reject ratio of attempted admissions
    over a sliding window.  Sustained pressure raises the *shed level*
    one importance class at a time; arrivals below the level are
    dropped before the admission test (cheap, and keeps the region's
    headroom for important traffic).  When pressure subsides the level
    steps back down, restoring full service.

    Attributes:
        level: Current shed level (0 = everything served).
        browned_out: Arrivals dropped by the brownout gate, total.
        browned_out_by_importance: Same, per importance class.
        level_history: ``(time, level)`` transitions, starting implicit
            at ``(0, 0)``.
    """

    def __init__(self, pipeline: PipelineSimulation, config: BrownoutConfig) -> None:
        self.pipeline = pipeline
        self.config = config
        self.level = 0
        self.browned_out = 0
        self.browned_out_by_importance: Dict[int, int] = {}
        self.level_history: List[Tuple[float, int]] = []
        self._outcomes: Deque[Tuple[float, bool]] = deque()
        self._installed = False

    def install(self) -> "BrownoutController":
        """Arm the periodic control-loop evaluation."""
        if self._installed:
            raise RuntimeError("BrownoutController.install called twice")
        self._installed = True
        self.pipeline.sim.after(self.config.evaluation_period, self._evaluate)
        return self

    # ------------------------------------------------------------------
    # Arrival path
    # ------------------------------------------------------------------

    def offer_at(self, task: PipelineTask) -> None:
        """Schedule the task's (gated) arrival."""
        self.pipeline.sim.at(task.arrival_time, self._gated_arrive, task)

    def offer_stream(self, tasks: Iterable[PipelineTask]) -> int:
        """Schedule a whole request stream; returns the number offered."""
        count = 0
        for task in tasks:
            self.offer_at(task)
            count += 1
        return count

    def _gated_arrive(self, task: PipelineTask) -> None:
        if task.importance < self.level:
            # Browned out: recorded as a non-admitted offer, but never
            # charged against the admission test.
            self.pipeline._record(task)
            self.browned_out += 1
            self.browned_out_by_importance[task.importance] = (
                self.browned_out_by_importance.get(task.importance, 0) + 1
            )
            return
        self.pipeline._arrive(task)
        record = self.pipeline.records[task.task_id]
        self._outcomes.append((self.pipeline.sim.now, record.admitted))

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------

    def _evaluate(self) -> None:
        now = self.pipeline.sim.now
        cutoff = now - self.config.window
        while self._outcomes and self._outcomes[0][0] < cutoff:
            self._outcomes.popleft()
        total = len(self._outcomes)
        if total >= self.config.min_samples:
            rejected = sum(1 for _, admitted in self._outcomes if not admitted)
            ratio = rejected / total
            if ratio > self.config.enter_reject_ratio and self.level < self.config.max_level:
                self.level += 1
                self.level_history.append((now, self.level))
            elif ratio < self.config.exit_reject_ratio and self.level > 0:
                self.level -= 1
                self.level_history.append((now, self.level))
        self.pipeline.sim.after(self.config.evaluation_period, self._evaluate)


# ----------------------------------------------------------------------
# Hysteresis-filtered capacity estimation from fault observations
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class CapacityHysteresis:
    """Hysteresis parameters for observation-driven capacity estimation.

    Capacity samples are quantized to a coarse grid so that noisy
    observations of the same underlying slowdown land on the same
    level, and a level only becomes *confirmed* after enough
    consecutive samples agree — transient blips (one slow request, one
    spurious overrun report) never move the confirmed estimate, so the
    degradation layer never thrashes the admitted set.

    Attributes:
        confirm_drops: Consecutive agreeing samples required to confirm
            a capacity *drop* (>= 1).
        confirm_restores: Consecutive agreeing samples required to
            confirm a capacity *restore* (>= 1).
        quantum: Grid step capacities are quantized to, in (0, 1].
        floor: Lowest capacity the estimator will ever report (> 0);
            full outages are declared explicitly over the wire, never
            inferred from noisy observations.
    """

    confirm_drops: int = 3
    confirm_restores: int = 3
    quantum: float = 0.05
    floor: float = 0.1

    def __post_init__(self) -> None:
        if self.confirm_drops < 1 or self.confirm_restores < 1:
            raise ValueError(
                "confirm_drops and confirm_restores must be >= 1, got "
                f"{self.confirm_drops} / {self.confirm_restores}"
            )
        if not (0.0 < self.quantum <= 1.0) or not math.isfinite(self.quantum):
            raise ValueError(f"quantum must be in (0, 1], got {self.quantum}")
        if not (0.0 < self.floor <= 1.0) or not math.isfinite(self.floor):
            raise ValueError(f"floor must be in (0, 1], got {self.floor}")


class CapacityEstimator:
    """Per-stage capacity estimate driven by fault observations.

    Pure and time-free: the estimate is a function of the observation
    *sequence* alone (no wall clock, no randomness), so replaying the
    same journaled ``report`` ops reproduces the same confirmations —
    the property that lets crash recovery rebuild the degradation
    state bitwise.

    Attributes:
        confirmed_drops / confirmed_restores: Confirmation counters.
    """

    def __init__(
        self, num_stages: int, config: Optional[CapacityHysteresis] = None
    ) -> None:
        if num_stages < 1:
            raise ValueError(f"num_stages must be >= 1, got {num_stages}")
        self.num_stages = num_stages
        self.config = config if config is not None else CapacityHysteresis()
        self._confirmed = [1.0] * num_stages
        self._candidate: List[Optional[float]] = [None] * num_stages
        self._streak = [0] * num_stages
        self.confirmed_drops = 0
        self.confirmed_restores = 0

    def confirmed(self, stage: int) -> float:
        """The confirmed capacity estimate for ``stage``."""
        return self._confirmed[stage]

    def confirmed_capacities(self) -> Tuple[float, ...]:
        """Confirmed capacity estimate per stage."""
        return tuple(self._confirmed)

    def quantize(self, sample: float) -> float:
        """Snap a raw capacity sample to the hysteresis grid.

        Raises:
            ValueError: If the sample is negative or not finite.
        """
        if not math.isfinite(sample) or sample < 0.0:
            raise ValueError(
                f"capacity sample must be finite and >= 0, got {sample}"
            )
        if sample >= 1.0:
            return 1.0
        level = int(sample / self.config.quantum)
        return max(self.config.floor, min(1.0, level * self.config.quantum))

    def declare(self, stage: int, capacity: float) -> None:
        """Adopt an authoritatively declared capacity, bypassing hysteresis.

        An explicit ``set_capacity`` op is ground truth, not a noisy
        observation: the confirmed level jumps straight to the declared
        value (any value in ``[0, 1]``, including a full outage below
        the observation floor) and pending candidate streaks are
        cleared so stale evidence cannot confirm against the old level.

        Raises:
            IndexError: On a stage index out of range.
            ValueError: If ``capacity`` is outside ``[0, 1]`` or not
                finite.
        """
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range")
        if not math.isfinite(capacity) or not (0.0 <= capacity <= 1.0):
            raise ValueError(f"capacity must be in [0, 1], got {capacity}")
        self._confirmed[stage] = capacity
        self._candidate[stage] = None
        self._streak[stage] = 0

    def observe(self, stage: int, sample: float) -> Optional[float]:
        """Feed one capacity sample; returns the newly confirmed level.

        A sample agreeing with the confirmed level clears any pending
        candidate.  A run of ``confirm_drops`` (or ``confirm_restores``
        when the candidate is above the confirmed level) consecutive
        samples on the *same* quantized level confirms it, and the new
        level is returned; otherwise ``None``.

        Raises:
            IndexError: On a stage index out of range.
            ValueError: On an invalid sample.
        """
        target = self.quantize(sample)
        if not 0 <= stage < self.num_stages:
            raise IndexError(f"stage {stage} out of range")
        if target == self._confirmed[stage]:
            self._candidate[stage] = None
            self._streak[stage] = 0
            return None
        if target == self._candidate[stage]:
            self._streak[stage] += 1
        else:
            self._candidate[stage] = target
            self._streak[stage] = 1
        dropping = target < self._confirmed[stage]
        need = (
            self.config.confirm_drops if dropping else self.config.confirm_restores
        )
        if self._streak[stage] < need:
            return None
        self._confirmed[stage] = target
        self._candidate[stage] = None
        self._streak[stage] = 0
        if dropping:
            self.confirmed_drops += 1
        else:
            self.confirmed_restores += 1
        return target

    def state_doc(self) -> Dict[str, Any]:
        """JSON-safe estimator state (snapshot support)."""
        return {
            "confirmed": list(self._confirmed),
            "candidate": list(self._candidate),
            "streak": list(self._streak),
            "drops": self.confirmed_drops,
            "restores": self.confirmed_restores,
        }

    def load_state(self, doc: Dict[str, Any]) -> None:
        """Adopt a :meth:`state_doc` document.

        Raises:
            ValueError: On malformed or wrong-arity state vectors.
        """
        try:
            confirmed = [float(c) for c in doc["confirmed"]]
            candidate = [
                None if c is None else float(c) for c in doc["candidate"]
            ]
            streak = [int(s) for s in doc["streak"]]
            drops = int(doc["drops"])
            restores = int(doc["restores"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(f"malformed estimator state: {exc}") from exc
        if not (
            len(confirmed) == len(candidate) == len(streak) == self.num_stages
        ):
            raise ValueError(
                f"estimator state arity mismatch for {self.num_stages} stages"
            )
        self._confirmed = confirmed
        self._candidate = candidate
        self._streak = streak
        self.confirmed_drops = drops
        self.confirmed_restores = restores
