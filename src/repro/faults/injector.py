"""Applies a :class:`~repro.faults.schedule.FaultSchedule` to a simulation.

The injector never forks the engine: every fault rides on mechanisms
the simulation already exposes —

- *slowdowns* and *execution overruns* wrap the pipeline's public
  ``segment_builder`` hook, scaling job durations at dispatch time;
- *outages* submit a maximal-priority blocker job that occupies the
  stage for the outage window (in-flight work is preempted, not lost);
- *lost notifications* shadow the controller's ``notify_*`` methods on
  the instance, swallowing calls per the schedule;
- *arrival bursts* are ordinary ``offer_at`` submissions scheduled from
  an injection event.

Every random decision draws from one seeded ``random.Random``, so a
given (schedule, seed) pair replays the exact same fault trace.

The injector doubles as the detection harness: each state-corrupting
lost notification immediately schedules an audit
(:class:`~repro.core.audit.ControllerAuditor`) against ground truth
from the simulation, and — when healing is enabled — repairs the
controller with
:meth:`~repro.core.admission.PipelineAdmissionController.resync`.
"""

from __future__ import annotations

import math
import random
from collections import Counter
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.audit import ControllerAuditor, InvariantViolation
from ..core.task import PipelineTask, make_task
from ..sim.pipeline import PipelineSimulation
from ..sim.stage import Segment
from .schedule import FaultSchedule, StageOutage

__all__ = ["FaultInjector"]

#: Priority key strictly smaller than any policy-assigned key, so an
#: outage blocker preempts (freezes) whatever the stage is running.
_OUTAGE_KEY: Tuple[float, ...] = (-math.inf,)

#: Expected violation for a corrupting drop: (kind, stage, task_id).
_Expectation = Tuple[str, int, Optional[Hashable]]


class FaultInjector:
    """Wires a fault schedule into a :class:`PipelineSimulation`.

    Args:
        pipeline: The target simulation (not yet run).
        schedule: The scripted faults.
        seed: Seed for every stochastic fault decision.
        rescale_admission: Enable capacity-aware region rescaling — the
            admission controller is told about slowdown/outage windows
            via ``set_stage_capacity`` so it charges inflated demand
            (or rejects outright) while a stage is degraded.
        audit_period: Run a ground-truth audit every this many time
            units (``None`` disables periodic audits).  Corrupting
            notification drops always trigger an immediate audit.
        heal: Self-healing mode — after an audit that found violations,
            rebuild controller state with ``resync`` and re-apply idle
            resets from ground truth.

    Attributes:
        auditor: The underlying :class:`ControllerAuditor`.
        dropped_departures / dropped_idles: Notifications swallowed.
        corrupting_drops: Drops that actually changed controller state.
        detected_corruptions: Corrupting drops whose expected violation
            the very next audit reported.
        heals: Number of ``resync`` repairs performed.
        violation_counts: Total violations seen, by kind.
        audit_log: ``(time, trigger, violations)`` per audit run.
    """

    def __init__(
        self,
        pipeline: PipelineSimulation,
        schedule: FaultSchedule,
        seed: int = 0,
        rescale_admission: bool = False,
        audit_period: Optional[float] = None,
        heal: bool = False,
    ) -> None:
        if audit_period is not None and audit_period <= 0:
            raise ValueError(f"audit_period must be > 0, got {audit_period}")
        self.pipeline = pipeline
        self.schedule = schedule
        self.rescale_admission = rescale_admission
        self.audit_period = audit_period
        self.heal = heal
        self.rng = random.Random(seed)
        self.auditor = ControllerAuditor(pipeline.controller)
        self.dropped_departures = 0
        self.dropped_idles = 0
        self.corrupting_drops = 0
        self.detected_corruptions = 0
        self.heals = 0
        self.burst_task_ids: List[int] = []
        self.violation_counts: Counter = Counter()
        self.audit_log: List[Tuple[float, str, List[InvariantViolation]]] = []
        self._installed = False
        self._original_builder = None
        self._orig_departure = None
        self._orig_idle = None
        self._blocker_ids: set = set()
        self._overrun_factors: Dict[int, float] = {}
        self._pending_checks: List[_Expectation] = []
        self._audit_scheduled = False

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Arm every fault and audit hook.  Idempotent-hostile: once only."""
        if self._installed:
            raise RuntimeError("FaultInjector.install called twice")
        self._installed = True
        pipeline = self.pipeline
        sim = pipeline.sim
        needs_builder = bool(self.schedule.slowdowns or self.schedule.overruns)
        if needs_builder:
            self._original_builder = pipeline.segment_builder
            pipeline.segment_builder = self._build_segments
        if self.schedule.drops:
            controller = pipeline.controller
            self._orig_departure = controller.notify_subtask_departure
            self._orig_idle = controller.notify_stage_idle
            controller.notify_subtask_departure = self._notify_departure  # type: ignore[method-assign]
            controller.notify_stage_idle = self._notify_idle  # type: ignore[method-assign]
        if self.schedule.outages:
            for stage in pipeline.stages:
                stage.on_job_complete = self._wrap_job_complete(stage.on_job_complete)
            for outage in self.schedule.outages:
                sim.at(outage.start, self._begin_outage, outage)
        if self.rescale_admission:
            for slowdown in self.schedule.slowdowns:
                sim.at(slowdown.start, self._set_capacity, slowdown.stage, slowdown.factor)
                sim.at(slowdown.end, self._set_capacity, slowdown.stage, 1.0)
            for outage in self.schedule.outages:
                sim.at(outage.start, self._set_capacity, outage.stage, 0.0)
                sim.at(outage.end, self._set_capacity, outage.stage, 1.0)
        for burst in self.schedule.bursts:
            sim.at(burst.time, self._inject_burst, burst)
        if self.audit_period is not None:
            sim.after(self.audit_period, self._periodic_audit)
        return self

    # ------------------------------------------------------------------
    # Execution-time faults (slowdown / overrun)
    # ------------------------------------------------------------------

    def _build_segments(
        self, task: PipelineTask, stage_index: int
    ) -> Optional[Sequence[Segment]]:
        base = (
            self._original_builder(task, stage_index)
            if self._original_builder is not None
            else None
        )
        scale = self._execution_scale(task, stage_index)
        if scale == 1.0:
            return base
        if base is None:
            return [Segment(task.computation_times[stage_index] * scale)]
        return [Segment(s.duration * scale, s.lock) for s in base]

    def _execution_scale(self, task: PipelineTask, stage_index: int) -> float:
        """Duration multiplier for a job dispatched right now.

        Slowdowns apply the window active at dispatch time (a job
        spanning a window boundary keeps its dispatch-time rate — the
        injection granularity is the job, not the segment tick).
        """
        now = self.pipeline.sim.now
        scale = 1.0
        for slowdown in self.schedule.slowdowns:
            if slowdown.stage == stage_index and slowdown.active_at(now):
                scale /= slowdown.factor
        return scale * self._overrun_factor(task)

    def _overrun_factor(self, task: PipelineTask) -> float:
        factor = self._overrun_factors.get(task.task_id)
        if factor is None:
            factor = 1.0
            for overrun in self.schedule.overruns:
                if overrun.applies_to_arrival(task.arrival_time):
                    if overrun.probability >= 1.0 or self.rng.random() < overrun.probability:
                        factor *= overrun.factor
            self._overrun_factors[task.task_id] = factor
        return factor

    # ------------------------------------------------------------------
    # Outages
    # ------------------------------------------------------------------

    def _begin_outage(self, outage: StageOutage) -> None:
        blocker = make_task(
            arrival_time=self.pipeline.sim.now,
            deadline=outage.duration,
            computation_times=[0.0] * self.pipeline.num_stages,
        )
        self._blocker_ids.add(blocker.task_id)
        self.pipeline.stages[outage.stage].submit(
            blocker, _OUTAGE_KEY, duration=outage.duration
        )

    def _wrap_job_complete(self, original):
        def handler(job):
            if job.task.task_id in self._blocker_ids:
                self._blocker_ids.discard(job.task.task_id)
                return  # outage lifted; not a real task
            original(job)

        return handler

    def _set_capacity(self, stage: int, capacity: float) -> None:
        self.pipeline.controller.set_stage_capacity(stage, capacity)

    # ------------------------------------------------------------------
    # Lost notifications
    # ------------------------------------------------------------------

    def _notify_departure(self, task_id: Hashable, stage: int) -> None:
        assert self._orig_departure is not None
        now = self.pipeline.sim.now
        for fault in self.schedule.drops_of_kind("departure"):
            if fault.matches(now, stage) and self._coin(fault.probability):
                self.dropped_departures += 1
                tracker = self.pipeline.controller.trackers[stage]
                expiry = self.pipeline.controller.admitted_expiry(task_id)
                if tracker.contribution_of(task_id) > 0 and (
                    expiry is not None and expiry > now
                ):
                    # The contribution is live: dropping this departure
                    # leaves state the idle-reset rule can never release.
                    self.corrupting_drops += 1
                    self._expect_violation(("missed-departure", stage, task_id))
                return
        self._orig_departure(task_id, stage)

    def _notify_idle(self, stage: int) -> float:
        assert self._orig_idle is not None
        now = self.pipeline.sim.now
        for fault in self.schedule.drops_of_kind("idle"):
            if fault.matches(now, stage) and self._coin(fault.probability):
                self.dropped_idles += 1
                tracker = self.pipeline.controller.trackers[stage]
                if (
                    self.pipeline.controller.reset_on_idle
                    and tracker.pending_idle_release() > 0
                ):
                    self.corrupting_drops += 1
                    self._expect_violation(("missed-idle-reset", stage, None))
                return 0.0
        return self._orig_idle(stage)

    def _coin(self, probability: float) -> bool:
        return probability >= 1.0 or self.rng.random() < probability

    # ------------------------------------------------------------------
    # Bursts
    # ------------------------------------------------------------------

    def _inject_burst(self, burst) -> None:
        for _ in range(burst.count):
            costs = [
                self.rng.expovariate(1.0 / c) if c > 0 else 0.0
                for c in burst.mean_costs
            ]
            task = make_task(
                arrival_time=self.pipeline.sim.now,
                deadline=burst.deadline,
                computation_times=costs,
                importance=burst.importance,
            )
            self.burst_task_ids.append(task.task_id)
            self.pipeline.offer_at(task)

    # ------------------------------------------------------------------
    # Auditing / healing
    # ------------------------------------------------------------------

    def _expect_violation(self, expectation: _Expectation) -> None:
        self._pending_checks.append(expectation)
        if not self._audit_scheduled:
            # Defer to the next event at the same timestamp: the
            # pipeline finishes advancing the task (updating the
            # ground-truth frontier) before the audit inspects it.
            self._audit_scheduled = True
            self.pipeline.sim.after(0.0, self._run_audit, "drop")

    def _periodic_audit(self) -> None:
        self._run_audit("periodic")
        assert self.audit_period is not None
        self.pipeline.sim.after(self.audit_period, self._periodic_audit)

    def _run_audit(self, trigger: str) -> List[InvariantViolation]:
        self._audit_scheduled = False
        now = self.pipeline.sim.now
        violations = self.auditor.audit(
            now,
            frontier=self.pipeline.frontier(),
            idle_stages=self.pipeline.idle_stages(),
        )
        self.audit_log.append((now, trigger, violations))
        for violation in violations:
            self.violation_counts[violation.kind] += 1
        if self._pending_checks:
            found = {(v.kind, v.stage, v.task_id) for v in violations}
            for expectation in self._pending_checks:
                if expectation in found:
                    self.detected_corruptions += 1
            self._pending_checks.clear()
        if self.heal and violations:
            self.resync()
        return violations

    def resync(self) -> None:
        """Rebuild controller state from simulation ground truth."""
        controller = self.pipeline.controller
        controller.resync(self.pipeline.sim.now, self.pipeline.frontier())
        if controller.reset_on_idle:
            notify = self._orig_idle
            for stage in self.pipeline.idle_stages():
                # Bypass the fault wrapper: healing must not be dropped.
                if notify is not None:
                    notify(stage)
                else:
                    controller.notify_stage_idle(stage)
        self.heals += 1

    def final_audit(self) -> List[InvariantViolation]:
        """One last ground-truth audit (call after the run completes)."""
        return self._run_audit("final")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """Deterministic counters for the chaos report."""
        return {
            "dropped_departures": self.dropped_departures,
            "dropped_idles": self.dropped_idles,
            "corrupting_drops": self.corrupting_drops,
            "detected_corruptions": self.detected_corruptions,
            "detection_ratio": (
                self.detected_corruptions / self.corrupting_drops
                if self.corrupting_drops
                else 1.0
            ),
            "heals": self.heals,
            "audits_run": self.auditor.audits_run,
            "burst_tasks": len(self.burst_task_ids),
            "violations_by_kind": dict(sorted(self.violation_counts.items())),
            "violations_total": sum(self.violation_counts.values()),
        }
