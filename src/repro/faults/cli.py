"""Command-line chaos harness: ``python -m repro.faults``.

Runs named fault scenarios deterministically from a seed and emits a
JSON report of miss ratio among admitted tasks vs. fault intensity.
Two invocations with the same arguments produce byte-identical output.

Examples::

    python -m repro.faults --list
    python -m repro.faults --scenario all --seed 0
    python -m repro.faults --scenario lost_departures --out chaos.json
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .report import render_report
from .scenarios import run_scenarios, scenario_names

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description=(
            "Chaos harness: scripted fault injection against the pipeline "
            "admission controller, with invariant auditing and graceful "
            "degradation."
        ),
    )
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help=(
            "scenario to run (repeatable); 'all' runs the whole catalog "
            "(default: all)"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="seed for workloads and faults (default: 0)"
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSON report to PATH instead of stdout",
    )
    parser.add_argument(
        "--list", action="store_true", help="list known scenarios and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _parser().parse_args(argv)
    catalog = scenario_names()
    if args.list:
        for name in catalog:
            print(name)
        return 0
    requested = args.scenario if args.scenario else ["all"]
    names: List[str] = []
    for name in requested:
        if name == "all":
            names.extend(n for n in catalog if n not in names)
        elif name not in catalog:
            print(
                f"unknown scenario {name!r}; known: {', '.join(catalog)} (or 'all')",
                file=sys.stderr,
            )
            return 2
        elif name not in names:
            names.append(name)
    results = run_scenarios(names, seed=args.seed)
    text = render_report(results, seed=args.seed)
    if args.out is None:
        print(text)
    else:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0
