"""Fault injection and graceful degradation for the pipeline model.

The paper's zero-miss guarantee holds when its assumptions do: known
stage capacity, truthful demand declarations, and reliable Section-4
bookkeeping notifications.  This package deliberately breaks each
assumption (:mod:`~repro.faults.schedule`), injects the breakage
through the simulator's existing hooks
(:mod:`~repro.faults.injector`), detects the resulting controller
state corruption with ground-truth audits
(:mod:`repro.core.audit`), and degrades gracefully instead of
failing — capacity-aware region rescaling, deadline-aware admission
retry, and web-server brownout (:mod:`~repro.faults.degradation`).

The chaos harness CLI (``python -m repro.faults``) runs named
scenarios deterministically from a seed; see
:mod:`~repro.faults.scenarios`.  The scenario and CLI modules are
imported lazily (they pull in :mod:`repro.apps`) — import them
explicitly when needed.
"""

from .degradation import (
    BackoffAdmission,
    BackoffPolicy,
    BrownoutConfig,
    BrownoutController,
)
from .injector import FaultInjector
from .schedule import (
    ArrivalBurst,
    ConnectionStorm,
    DropNotification,
    ExecutionOverrun,
    FaultSchedule,
    NetworkFaultSchedule,
    PartialWrite,
    SlowClientStall,
    StageOutage,
    StageSlowdown,
    TornFrame,
    WorkerKill,
)

__all__ = [
    "ArrivalBurst",
    "BackoffAdmission",
    "BackoffPolicy",
    "BrownoutConfig",
    "BrownoutController",
    "ConnectionStorm",
    "DropNotification",
    "ExecutionOverrun",
    "FaultInjector",
    "FaultSchedule",
    "NetworkFaultSchedule",
    "PartialWrite",
    "SlowClientStall",
    "StageOutage",
    "StageSlowdown",
    "TornFrame",
    "WorkerKill",
]
