"""Degradation chaos: capacity-drop/restore waves under crash recovery.

The crash chaos harness (:mod:`repro.serve.recovery`) proves the
durability contract for the *bookkeeping* ops; this harness proves it
for the online degradation manager, whose ops are the most invasive in
the protocol — a single ``set_capacity`` can re-charge the whole
admitted set and sacrifice tasks.  A durable gateway and an in-memory
shadow run the same seeded op stream in lockstep while the harness
injects, every cycle:

- an **explicit capacity wave**: a ``set_capacity`` drop on a random
  stage (sometimes a full outage, capacity 0.0) followed by a
  symmetric restore to nominal;
- a **report wave**: bursts of identical ``report`` observations that
  must pass the hysteresis filter before anything touches the admitted
  set — a drop burst (slowdown/overrun) and later an ``ok`` burst that
  restores the estimate;
- a **crash** (``torn`` / ``after_journal`` / ``after_apply``) followed
  by recovery, outstanding-request retries, and a fingerprint
  comparison against the shadow — the fingerprint now covers the
  degradation state (estimator + sacrifice ledger), so a recovery that
  replayed a different sacrifice sequence cannot pass.

After *every* applied op the harness re-runs the Eq. 12/15 region test
over each pipeline's live admitted set: the degradation contract is
that repair-by-sacrifice always returns the system to the feasible
region, so the violation count must be zero across the whole run.

Halfway through, the harness also exercises the snapshot lineage: it
harvests a live pipeline snapshot, downgrades the embedded controller
document to schema v3 (stripping the per-record demand/seq fields and
the degradation bookkeeping), and restores it into both gateways under
a new name — proving a pre-degradation snapshot upgrades cleanly into
a serving v4 gateway.

The report is byte-stable for a given parameter set (no wall clock, no
filesystem paths) and :func:`degradation_chaos_gate_failures` turns it
into an accept/reject gate for ``make serve-smoke`` and CI.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .gateway import DEFAULT_DEDUP_WINDOW, AdmissionGateway
from .protocol import encode
from .recovery import RecoveryReport, recover, registry_fingerprint
from .snapshot import SNAPSHOT_FORMAT_V3

__all__ = [
    "DEGRADATION_CHAOS_REPORT_FORMAT",
    "run_degradation_chaos",
    "degradation_chaos_gate_failures",
]

#: Version tag of the degradation-chaos report document.
DEGRADATION_CHAOS_REPORT_FORMAT = "repro.serve.degradation-chaos-report/1"

_CRASH_KINDS = ("torn", "after_journal", "after_apply")

#: Aggressive hysteresis so seeded report bursts confirm within a
#: cycle; quantum 0.1 keeps confirmed levels on a coarse grid.
_CHAOS_HYSTERESIS = {
    "confirm_drops": 2,
    "confirm_restores": 2,
    "quantum": 0.1,
    "floor": 0.2,
}

#: ``web`` takes the report waves (observation-driven estimation);
#: ``locked`` and ``batched`` take the explicit ``set_capacity`` waves,
#: covering the locking beta re-preview and the batch-barrier path.
_CHAOS_POLICIES: Dict[str, Dict[str, Any]] = {
    "web": {"num_stages": 3, "alpha": 0.9, "degradation": _CHAOS_HYSTERESIS},
    "locked": {
        "num_stages": 2,
        "alpha": 0.9,
        "locking": True,
        "degradation": _CHAOS_HYSTERESIS,
    },
    "batched": {
        "num_stages": 2,
        "alpha": 0.9,
        "max_batch": 3,
        "degradation": _CHAOS_HYSTERESIS,
    },
}

_WAVE_TARGETS = ("locked", "batched")

#: Resource ids the locking pipeline's admits contend on.
_CHAOS_RESOURCES = ("lock-a", "lock-b")

#: Capacity levels explicit drop waves choose from (0.0 = full outage).
_DROP_LEVELS = (0.0, 0.3, 0.5, 0.7)


def run_degradation_chaos(
    seed: int = 0,
    cycles: int = 24,
    ops_per_cycle: int = 16,
    state_dir: Optional[Union[str, Path]] = None,
    snapshot_every: int = 40,
    fsync: bool = False,
    dedup_window: int = DEFAULT_DEDUP_WINDOW,
) -> Dict[str, Any]:
    """Run capacity-degradation waves under crash chaos; prove the gates.

    Args:
        seed: RNG seed driving the op stream, wave levels, and crash
            choices.
        cycles: Wave + crash/recover cycles to run.
        ops_per_cycle: Background ops per cycle (waves ride on top).
        state_dir: Durable state directory; a private temporary
            directory (removed afterwards) if ``None``.
        snapshot_every: Compaction period of the durable gateway.
        fsync: Run the journal with per-record fsync.
        dedup_window: Idempotency window size for both gateways.
    """
    if cycles < 2:
        raise ValueError(f"cycles must be >= 2, got {cycles}")
    if ops_per_cycle < 4:
        raise ValueError(f"ops_per_cycle must be >= 4, got {ops_per_cycle}")
    owns_dir = state_dir is None
    root = Path(
        tempfile.mkdtemp(prefix="repro-serve-degchaos-") if owns_dir else state_dir
    )
    try:
        return _run_degradation_chaos(
            rng=random.Random(seed),
            seed=seed,
            cycles=cycles,
            ops_per_cycle=ops_per_cycle,
            root=root,
            snapshot_every=snapshot_every,
            fsync=fsync,
            dedup_window=dedup_window,
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


def _run_degradation_chaos(
    rng: random.Random,
    seed: int,
    cycles: int,
    ops_per_cycle: int,
    root: Path,
    snapshot_every: int,
    fsync: bool,
    dedup_window: int,
) -> Dict[str, Any]:
    durable, _ = recover(
        root, fsync=fsync, snapshot_every=snapshot_every, dedup_window=dedup_window
    )
    shadow = AdmissionGateway(dedup_window=dedup_window)

    next_id = 0
    next_task_id = 0
    now = 0.0
    id_to_rid: Dict[int, str] = {}
    unacked: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    ledger: Dict[str, Any] = {}
    crash_counts = {kind: 0 for kind in _CRASH_KINDS}
    response_mismatches = 0
    decision_mismatches = 0
    fingerprint_matches = 0
    fingerprint_mismatches = 0
    region_violations = 0
    ops_issued = 0
    drops_applied = 0
    outages_applied = 0
    restores_applied = 0
    report_waves = 0
    stall_retries = 0
    upgrade = {"attempted": False, "restored": False}
    recoveries: List[RecoveryReport] = []

    def fresh_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id

    def ack(response: Dict[str, Any]) -> None:
        nonlocal decision_mismatches
        rid = id_to_rid.get(response.get("id"))
        if rid is None:
            return
        if response.get("error") == "duplicate-request":
            return
        unacked.pop(rid, None)
        decision = response.get("admitted")
        if rid in ledger:
            if ledger[rid] != decision:
                decision_mismatches += 1
        else:
            ledger[rid] = decision

    def check_region() -> None:
        """The post-repair feasibility invariant, after every op."""
        nonlocal region_violations
        for pipeline in shadow.registry:
            if not pipeline.controller.region_ok():
                region_violations += 1

    def apply(doc: Dict[str, Any]) -> List[str]:
        nonlocal response_mismatches
        line = encode(doc)
        got = [response for _, response in durable.handle_line(line)]
        want = [response for _, response in shadow.handle_line(line)]
        if got != want:
            response_mismatches += 1
        for response in got:
            ack(json.loads(response))
        check_region()
        return got

    def issue(doc: Dict[str, Any]) -> None:
        id_to_rid[doc["id"]] = doc["rid"]
        if doc["rid"] not in ledger:
            unacked[doc["rid"]] = doc

    def send(doc: Dict[str, Any]) -> List[str]:
        issue(doc)
        return apply(doc)

    def retry(doc: Dict[str, Any]) -> None:
        again = dict(doc)
        again["id"] = fresh_id()
        id_to_rid[again["id"]] = doc["rid"]
        apply(again)

    def envelope(name: str) -> Dict[str, Any]:
        request_id = fresh_id()
        return {"id": request_id, "rid": f"r{request_id}", "pipeline": name}

    def gen_op() -> Dict[str, Any]:
        nonlocal now, next_task_id, ops_issued
        ops_issued += 1
        now += rng.uniform(0.05, 0.3)
        name = rng.choice(sorted(_CHAOS_POLICIES))
        stages = _CHAOS_POLICIES[name]["num_stages"]
        doc = envelope(name)
        roll = rng.random()
        if roll < 0.62:
            next_task_id += 1
            doc["op"] = "admit"
            doc["task"] = {
                "task_id": next_task_id,
                "arrival": now,
                "deadline": now + rng.uniform(1.5, 4.0),
                "costs": [rng.uniform(0.02, 0.12) for _ in range(stages)],
                "importance": rng.randrange(3),
            }
            if name == "locked" and rng.random() < 0.6:
                picks = rng.sample(
                    [(s, r) for s in range(stages) for r in _CHAOS_RESOURCES],
                    rng.randrange(1, 3),
                )
                doc["task"]["resources"] = [
                    {
                        "stage": stage,
                        "resource": resource,
                        "max_length": rng.uniform(0.0, 0.06),
                    }
                    for stage, resource in sorted(picks)
                ]
        elif roll < 0.74:
            doc["op"] = "depart"
            doc["task_id"] = rng.randrange(1, max(2, next_task_id + 1))
            doc["stage"] = rng.randrange(stages)
        elif roll < 0.84:
            doc["op"] = "expire"
            doc["now"] = now
        elif roll < 0.92:
            doc["op"] = "idle"
            doc["stage"] = rng.randrange(stages)
        else:
            doc["op"] = "stats"
            del doc["pipeline"]
        return doc

    def capacity_op(name: str, stage: int, capacity: float) -> Dict[str, Any]:
        nonlocal ops_issued
        ops_issued += 1
        doc = envelope(name)
        doc["op"] = "set_capacity"
        doc["stage"] = stage
        doc["capacity"] = capacity
        return doc

    def report_op(
        name: str, stage: int, kind: str, ratio: Optional[float]
    ) -> Dict[str, Any]:
        nonlocal ops_issued
        ops_issued += 1
        doc = envelope(name)
        doc["op"] = "report"
        doc["stage"] = stage
        doc["kind"] = kind
        if ratio is not None:
            doc["ratio"] = ratio
        return doc

    def settle_outstanding() -> None:
        for doc in list(unacked.values()):
            retry(doc)
        if unacked:
            drain_id = fresh_id()
            drain_doc = {"id": drain_id, "op": "drain", "rid": f"r{drain_id}"}
            send(drain_doc)
            for doc in list(unacked.values()):
                retry(doc)

    def crash(kind: str, doc: Dict[str, Any]) -> None:
        nonlocal durable, fingerprint_matches, fingerprint_mismatches
        nonlocal response_mismatches
        if kind == "torn":
            durable.journal.append_torn(doc, keep=rng.uniform(0.1, 0.9))
        elif kind == "after_journal":
            durable.journal.append(doc)
            shadow.handle_line(encode(doc))
        else:  # after_apply — response lost mid-flight
            line = encode(doc)
            got = [response for _, response in durable.handle_line(line)]
            want = [response for _, response in shadow.handle_line(line)]
            if got != want:
                response_mismatches += 1
        crash_counts[kind] += 1
        durable.close()
        durable, report = recover(
            root,
            fsync=fsync,
            snapshot_every=snapshot_every,
            dedup_window=dedup_window,
        )
        recoveries.append(report)
        if registry_fingerprint(durable) == registry_fingerprint(shadow):
            fingerprint_matches += 1
        else:
            fingerprint_mismatches += 1
        settle_outstanding()
        check_region()

    def snapshot_upgrade() -> None:
        """Harvest a live snapshot, downgrade to v3, restore it (v3→v4)."""
        upgrade["attempted"] = True
        doc = envelope("web")
        doc["op"] = "snapshot"
        snapshot_doc = None
        for line in send(doc):
            response = json.loads(line)
            if response.get("op") == "snapshot" and response.get("ok"):
                snapshot_doc = response["snapshot"]
        if snapshot_doc is None:
            return
        legacy = json.loads(json.dumps(snapshot_doc))
        legacy.pop("degradation", None)
        controller_doc = legacy["controller"]
        controller_doc["format"] = SNAPSHOT_FORMAT_V3
        controller_doc.pop("admission_seq", None)
        controller_doc.pop("charges_follow_capacity", None)
        for record in controller_doc["admitted"]:
            record.pop("demand", None)
            record.pop("seq", None)
        # The clone serves fresh traffic counts, not web's history —
        # carrying the counters over would double-count acked
        # admissions against the harness ledger.
        legacy["counters"] = {}
        restore_doc = envelope("web-v3")
        restore_doc["op"] = "restore"
        restore_doc["snapshot"] = legacy
        upgrade["restored"] = any(
            response.get("op") == "restore" and response.get("ok")
            for response in map(json.loads, send(restore_doc))
        )

    for name in sorted(_CHAOS_POLICIES):
        register_doc = envelope(name)
        register_doc["op"] = "register"
        register_doc["policy"] = dict(_CHAOS_POLICIES[name])
        send(register_doc)

    for cycle in range(cycles):
        kind = _CRASH_KINDS[cycle % len(_CRASH_KINDS)]
        crash_at = rng.randrange(2, ops_per_cycle)
        # Build this cycle's wave schedule: explicit drop + restore on
        # one wave pipeline, and (every other cycle) a report wave on
        # "web" — a drop burst followed by a restoring ok burst.
        target = _WAVE_TARGETS[cycle % len(_WAVE_TARGETS)]
        wave_stage = rng.randrange(_CHAOS_POLICIES[target]["num_stages"])
        # Every fourth cycle is a full outage so the coverage gates
        # hold for any seed; the rest draw a partial level.
        if cycle % 4 == 1:
            level = 0.0
        else:
            level = _DROP_LEVELS[1 + rng.randrange(len(_DROP_LEVELS) - 1)]
        scheduled: List[Dict[str, Any]] = [
            capacity_op(target, wave_stage, level)
        ]
        if cycle % 2 == 0:
            report_stage = rng.randrange(_CHAOS_POLICIES["web"]["num_stages"])
            drop_kind = "slowdown" if cycle % 4 == 0 else "overrun"
            ratio = 0.5 if drop_kind == "slowdown" else 2.0
            scheduled.extend(
                report_op("web", report_stage, drop_kind, ratio)
                for _ in range(_CHAOS_HYSTERESIS["confirm_drops"])
            )
            scheduled.extend(
                report_op("web", report_stage, "ok", None)
                for _ in range(_CHAOS_HYSTERESIS["confirm_restores"])
            )
            report_waves += 1
        scheduled.append(capacity_op(target, wave_stage, 1.0))
        # Exact literal from _DROP_LEVELS, not a computed float.
        if level == 0.0:  # repro: noqa[FLT001] — outage sentinel is the literal 0.0
            outages_applied += 1
        else:
            drops_applied += 1
        restores_applied += 1
        # Interleave the wave ops into the background stream at seeded
        # positions, keeping their relative order (drop before restore).
        slots = sorted(rng.randrange(ops_per_cycle) for _ in scheduled)
        by_slot: Dict[int, List[Dict[str, Any]]] = {}
        for slot, doc in zip(slots, scheduled):
            by_slot.setdefault(slot, []).append(doc)
        crashed = False
        for index in range(ops_per_cycle):
            for doc in by_slot.get(index, []):
                issue(doc)
                apply(doc)
            doc = gen_op()
            issue(doc)
            if index == crash_at:
                crash(kind, doc)
                crashed = True
                break
            apply(doc)
            if rng.random() < 0.15:
                stall_retries += 1
                retry(doc)
        if crashed:
            # Deliver the wave ops the crash preempted: degradation
            # waves must complete (restore follows drop) even across a
            # crash, exactly like a monitoring client would retry them.
            for slot, docs in sorted(by_slot.items()):
                if slot > crash_at:
                    for doc in docs:
                        issue(doc)
                        apply(doc)
        if cycle == cycles // 2:
            snapshot_upgrade()

    final_drain_id = fresh_id()
    send({"id": final_drain_id, "op": "drain", "rid": f"r{final_drain_id}"})
    for doc in list(unacked.values()):
        retry(doc)

    final_identical = registry_fingerprint(durable) == registry_fingerprint(shadow)
    acked_admitted = sum(1 for decision in ledger.values() if decision is True)
    counted_admitted = sum(
        pipeline.counters.admitted for pipeline in durable.gateway.registry
    )
    sacrificed_total = sum(
        pipeline.counters.sacrificed for pipeline in shadow.registry
    )
    rescales_total = sum(
        pipeline.counters.rescales for pipeline in shadow.registry
    )
    confirmed_drops = sum(
        pipeline.degradation.estimator.confirmed_drops
        for pipeline in shadow.registry
    )
    confirmed_restores = sum(
        pipeline.degradation.estimator.confirmed_restores
        for pipeline in shadow.registry
    )
    durable.close()

    return {
        "format": DEGRADATION_CHAOS_REPORT_FORMAT,
        "seed": seed,
        "cycles": cycles,
        "ops_per_cycle": ops_per_cycle,
        "snapshot_every": snapshot_every,
        "fsync": fsync,
        "ops_issued": ops_issued,
        "crashes": {**crash_counts, "total": sum(crash_counts.values())},
        "stall_retries": stall_retries,
        "waves": {
            "drops": drops_applied,
            "outages": outages_applied,
            "restores": restores_applied,
            "report_waves": report_waves,
        },
        "degradation": {
            "rescales": rescales_total,
            "sacrificed": sacrificed_total,
            "confirmed_drops": confirmed_drops,
            "confirmed_restores": confirmed_restores,
            "region_violations": region_violations,
        },
        "snapshot_upgrade": dict(upgrade),
        "recoveries": {
            "count": len(recoveries),
            "snapshot_loads": sum(1 for r in recoveries if r.snapshot_loaded),
            "replayed": sum(r.replayed for r in recoveries),
            "truncated_bytes": sum(r.truncated_bytes for r in recoveries),
        },
        "admissions": {
            "acked_admitted": acked_admitted,
            "counted_admitted": counted_admitted,
            "lost": max(0, acked_admitted - counted_admitted),
            "duplicated": max(0, counted_admitted - acked_admitted),
            "decision_mismatches": decision_mismatches,
            "response_mismatches": response_mismatches,
            "unresolved": len(unacked),
        },
        "equivalence": {
            "fingerprint_matches": fingerprint_matches,
            "fingerprint_mismatches": fingerprint_mismatches,
            "final_identical": final_identical,
        },
        "region_values": {
            pipeline.name: pipeline.controller.region_value()
            for pipeline in durable.gateway.registry
        },
    }


def degradation_chaos_gate_failures(
    report: Dict[str, Any], min_recoveries: int = 12
) -> List[str]:
    """Check a degradation-chaos report against the acceptance gates."""
    failures: List[str] = []
    admissions = report["admissions"]
    if admissions["lost"]:
        failures.append(f"{admissions['lost']} acked admissions lost to crashes")
    if admissions["duplicated"]:
        failures.append(f"{admissions['duplicated']} admissions double-counted")
    if admissions["decision_mismatches"]:
        failures.append(
            f"{admissions['decision_mismatches']} retries changed their decision"
        )
    if admissions["response_mismatches"]:
        failures.append(
            f"{admissions['response_mismatches']} durable/shadow response divergences"
        )
    if admissions["unresolved"]:
        failures.append(f"{admissions['unresolved']} requests never acknowledged")
    degradation = report["degradation"]
    if degradation["region_violations"]:
        failures.append(
            f"{degradation['region_violations']} post-repair region violations"
        )
    if degradation["rescales"] == 0:
        failures.append("no capacity rescale was ever applied")
    if degradation["sacrificed"] == 0:
        failures.append("no repair ever had to sacrifice a task")
    if degradation["confirmed_drops"] == 0:
        failures.append("no observation-driven capacity drop was confirmed")
    if degradation["confirmed_restores"] == 0:
        failures.append("no observation-driven capacity restore was confirmed")
    waves = report["waves"]
    if waves["drops"] == 0:
        failures.append("no explicit capacity drop wave ran")
    if waves["outages"] == 0:
        failures.append("no full-outage (capacity 0.0) wave ran")
    if waves["restores"] == 0:
        failures.append("no capacity restore wave ran")
    equivalence = report["equivalence"]
    if equivalence["fingerprint_mismatches"]:
        failures.append(
            f"{equivalence['fingerprint_mismatches']} post-recovery fingerprint "
            "mismatches"
        )
    if not equivalence["final_identical"]:
        failures.append("final durable/shadow fingerprints differ")
    if report["recoveries"]["count"] < min_recoveries:
        failures.append(
            f"only {report['recoveries']['count']} crash/recover cycles ran "
            f"(need >= {min_recoveries})"
        )
    for kind in _CRASH_KINDS:
        if report["crashes"][kind] == 0:
            failures.append(f"crash kind {kind!r} was never exercised")
    if not report["snapshot_upgrade"]["restored"]:
        failures.append("the v3-to-v4 snapshot upgrade restore did not succeed")
    if report["recoveries"]["snapshot_loads"] == 0:
        failures.append("no recovery ever loaded a compaction snapshot")
    if report["stall_retries"] == 0:
        failures.append("no slow-response stall retries were injected")
    return failures
