"""Gateway clients: transports, a request/response client, and a proxy.

Three layers, bottom-up:

* Transports carry protocol lines.  :class:`InProcessTransport` drives
  an :class:`~repro.serve.gateway.AdmissionGateway` directly — same
  lines, same bytes, no sockets — so tests and the load generator stay
  deterministic and fast.  :class:`TcpTransport` is a blocking-socket
  client for a live :class:`~repro.serve.gateway.GatewayServer`.
* :class:`GatewayClient` assigns request ids, correlates responses
  (batched ``admit`` responses arrive *later*, interleaved with other
  replies), and raises :class:`GatewayError` on protocol errors.
* :class:`GatewayControllerProxy` duck-types the
  :class:`~repro.core.admission.PipelineAdmissionController` interface
  over a client, so a :class:`~repro.sim.pipeline.PipelineSimulation`
  can run closed-loop against a remote gateway unchanged.
"""

from __future__ import annotations

import json
import math
import socket
from typing import Any, Dict, Hashable, List, Optional, Union

from ..core.admission import AdmissionDecision
from ..core.task import PipelineTask
from .gateway import AdmissionGateway
from .protocol import task_to_wire

__all__ = [
    "GatewayError",
    "InProcessTransport",
    "TcpTransport",
    "GatewayClient",
    "GatewayControllerProxy",
]


class GatewayError(RuntimeError):
    """An error response from the gateway (or a transport failure).

    Attributes:
        code: The protocol error code (e.g. ``"unknown-pipeline"``),
            or ``"transport"`` for client-side failures.
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(f"[{code}] {detail}")
        self.code = code
        self.detail = detail


class InProcessTransport:
    """Drives a gateway synchronously; full protocol, no sockets."""

    def __init__(self, gateway: Optional[AdmissionGateway] = None) -> None:
        self.gateway = gateway if gateway is not None else AdmissionGateway()

    def submit(self, line: str) -> List[str]:
        """Send one request line; return every response line it released."""
        return [response for _origin, response in self.gateway.handle_line(line)]

    def readline(self) -> Optional[str]:
        """In-process responses always come back from :meth:`submit`."""
        return None

    def close(self) -> None:
        """Nothing to release."""


class TcpTransport:
    """Blocking-socket client for a live gateway server."""

    def __init__(self, host: str, port: int, timeout: float = 10.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def submit(self, line: str) -> List[str]:
        """Send one request line; responses are read via :meth:`readline`."""
        self._file.write(line.encode("utf-8") + b"\n")
        self._file.flush()
        return []

    def readline(self) -> Optional[str]:
        """Block until the server sends the next response line."""
        raw = self._file.readline()
        if not raw:
            return None
        return raw.decode("utf-8").strip()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


Transport = Union[InProcessTransport, TcpTransport]


class GatewayClient:
    """Request/response client with deferred-response correlation."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self._next_id = 0
        self._inbox: Dict[Any, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def send(self, op: str, **operands: Any) -> int:
        """Send one request; return its id without waiting for a reply."""
        request_id = self._next_id
        self._next_id += 1
        request: Dict[str, Any] = {"id": request_id, "op": op}
        request.update(operands)
        line = json.dumps(request, sort_keys=True, separators=(",", ":"))
        self._stash(self.transport.submit(line))
        return request_id

    def _stash(self, lines: List[str]) -> None:
        for line in lines:
            response = json.loads(line)
            self._inbox[response.get("id")] = response

    def collect(self, request_id: int, wait: bool = True) -> Optional[Dict[str, Any]]:
        """Fetch the response to ``request_id``.

        Args:
            request_id: Id returned by :meth:`send`.
            wait: Block (reading the transport) until the response
                arrives.  With ``wait=False``, return ``None`` if it is
                not here yet — e.g. an admit still queued in a batch.

        Raises:
            GatewayError: If waiting and the transport cannot produce
                the response (in-process deferred batch, closed
                socket).
        """
        while request_id not in self._inbox:
            if not wait:
                return None
            line = self.transport.readline()
            if line is None:
                raise GatewayError(
                    "transport",
                    f"response to request {request_id} is not available "
                    "(batched admit pending? connection closed?)",
                )
            self._stash([line])
        return self._inbox.pop(request_id)

    def call(self, op: str, **operands: Any) -> Dict[str, Any]:
        """Send one request and return its (checked) response.

        Raises:
            GatewayError: On an error response.
        """
        response = self.collect(self.send(op, **operands))
        assert response is not None
        if not response.get("ok"):
            raise GatewayError(
                str(response.get("error", "unknown")),
                str(response.get("detail", "")),
            )
        return response

    def close(self) -> None:
        self.transport.close()

    # ------------------------------------------------------------------
    # Operation helpers
    # ------------------------------------------------------------------

    def register(self, pipeline: str, policy: Dict[str, Any]) -> Dict[str, Any]:
        return self.call("register", pipeline=pipeline, policy=policy)

    def admit(self, pipeline: str, task: PipelineTask) -> Dict[str, Any]:
        """Admit synchronously (the pipeline must respond unbatched)."""
        return self.call("admit", pipeline=pipeline, task=task_to_wire(task))

    def submit_admit(self, pipeline: str, task: PipelineTask) -> int:
        """Queue an admit on a batched pipeline; correlate via the id."""
        return self.send("admit", pipeline=pipeline, task=task_to_wire(task))

    def drain(self) -> Dict[str, Any]:
        """Flush all pending batches; afterwards every admit answered."""
        return self.call("drain")

    def stats(self, pipeline: Optional[str] = None) -> Dict[str, Any]:
        if pipeline is None:
            return self.call("stats")
        return self.call("stats", pipeline=pipeline)


def _decision_from_response(response: Dict[str, Any]) -> AdmissionDecision:
    return AdmissionDecision(
        admitted=bool(response["admitted"]),
        region_value=float(response["region_value"]),
        shed=tuple(response.get("shed", ())),
    )


class GatewayControllerProxy:
    """Duck-typed admission controller backed by a gateway pipeline.

    Implements the controller surface a
    :class:`~repro.sim.pipeline.PipelineSimulation` touches —
    ``request``/``request_with_shedding``, ``expire``, the departure
    and idle notifications, ``set_stage_capacity`` — by issuing
    protocol calls.  The served pipeline must be *unbatched*: the
    simulation needs each decision synchronously.  (Whether shedding is
    applied is the pipeline policy's choice; both request methods map
    to the same ``admit`` operation.)
    """

    def __init__(
        self,
        client: GatewayClient,
        pipeline: str,
        num_stages: int,
        reset_on_idle: bool = True,
    ) -> None:
        self.client = client
        self.pipeline = pipeline
        self.num_stages = num_stages
        self.reset_on_idle = reset_on_idle
        self.drop_departures = False
        self.drop_idles = False

    def request(self, task: PipelineTask, now: float) -> AdmissionDecision:
        del now  # the wire task carries its own arrival timestamp
        return _decision_from_response(self.client.admit(self.pipeline, task))

    def request_with_shedding(
        self, task: PipelineTask, now: float
    ) -> AdmissionDecision:
        del now
        return _decision_from_response(self.client.admit(self.pipeline, task))

    def expire(self, now: float) -> None:
        self.client.call("expire", pipeline=self.pipeline, now=now)

    def notify_subtask_departure(self, task_id: Hashable, stage: int) -> None:
        if self.drop_departures:
            return
        self.client.call(
            "depart", pipeline=self.pipeline, task_id=task_id, stage=stage
        )

    def notify_stage_idle(self, stage: int) -> float:
        if self.drop_idles:
            return 0.0
        response = self.client.call("idle", pipeline=self.pipeline, stage=stage)
        return float(response["released"])

    def set_stage_capacity(self, stage: int, capacity: float) -> None:
        self.client.call(
            "capacity", pipeline=self.pipeline, stage=stage, capacity=capacity
        )

    def resync(self, now: float, frontier: Dict[Hashable, int]) -> Dict[str, Any]:
        wire_frontier = {str(task_id): stage for task_id, stage in frontier.items()}
        return self.client.call(
            "resync", pipeline=self.pipeline, now=now, frontier=wire_frontier
        )

    def next_expiry(self) -> float:
        """Expiry wake-ups are server-side; the proxy never schedules one."""
        return math.inf
