"""Gateway clients: transports, a request/response client, and a proxy.

Three layers, bottom-up:

* Transports carry protocol lines.  :class:`InProcessTransport` drives
  an :class:`~repro.serve.gateway.AdmissionGateway` directly — same
  lines, same bytes, no sockets — so tests and the load generator stay
  deterministic and fast.  :class:`TcpTransport` is a blocking-socket
  client for a live :class:`~repro.serve.gateway.GatewayServer`.
* :class:`GatewayClient` assigns request ids, correlates responses
  (batched ``admit`` responses arrive *later*, interleaved with other
  replies), and raises :class:`GatewayError` on protocol errors.
* :class:`RetryingGatewayClient` layers idempotent retries on top: it
  stamps every logical request with a client-generated ``rid`` and
  re-sends the *same* rid across timeouts and reconnects, so the
  gateway's dedup window turns an ambiguous failure ("did my admit
  land?") into an exactly-once decision.  Backoff is deadline-aware,
  mirroring :class:`~repro.faults.degradation.BackoffAdmission`; an
  optional shared :class:`RetryBudget` caps fleet-wide retry
  amplification and :class:`RetryPolicy` can switch to full jitter to
  decorrelate synchronized retriers.
* :class:`GatewayControllerProxy` duck-types the
  :class:`~repro.core.admission.PipelineAdmissionController` interface
  over a client, so a :class:`~repro.sim.pipeline.PipelineSimulation`
  can run closed-loop against a remote gateway unchanged.
"""

from __future__ import annotations

import json
import math
import random
import socket
import time
import uuid
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Union

from ..core.admission import AdmissionDecision
from ..core.numeric import approx_le
from ..core.task import PipelineTask
from ..faults.degradation import BackoffPolicy
from .gateway import AdmissionGateway
from .protocol import task_to_wire

__all__ = [
    "GatewayError",
    "GatewayTimeout",
    "InProcessTransport",
    "TcpTransport",
    "GatewayClient",
    "RetryPolicy",
    "RetryBudget",
    "RetryingGatewayClient",
    "GatewayControllerProxy",
]


class GatewayError(RuntimeError):
    """An error response from the gateway (or a transport failure).

    Attributes:
        code: The protocol error code (e.g. ``"unknown-pipeline"``),
            or ``"transport"`` for client-side failures.
        response: The full error-response document when the failure was
            a gateway answer (``None`` for client-side failures).  Lets
            routing layers read structured payload fields — a
            ``wrong-shard`` bounce carries the current shard map here.
    """

    def __init__(
        self, code: str, detail: str, response: Optional[Dict[str, Any]] = None
    ) -> None:
        super().__init__(f"[{code}] {detail}")
        self.code = code
        self.detail = detail
        self.response = response


class GatewayTimeout(GatewayError):
    """A connect or read exceeded its configured timeout.

    A timeout is *ambiguous*: the request may or may not have reached
    the gateway.  Safe to retry only with an idempotent rid (see
    :class:`RetryingGatewayClient`).
    """

    def __init__(self, detail: str) -> None:
        super().__init__("timeout", detail)


class InProcessTransport:
    """Drives a gateway synchronously; full protocol, no sockets."""

    def __init__(self, gateway: Optional[AdmissionGateway] = None) -> None:
        self.gateway = gateway if gateway is not None else AdmissionGateway()

    def submit(self, line: str) -> List[str]:
        """Send one request line; return every response line it released."""
        return [response for _origin, response in self.gateway.handle_line(line)]

    def readline(self) -> Optional[str]:
        """In-process responses always come back from :meth:`submit`."""
        return None

    def close(self) -> None:
        """Nothing to release."""


class TcpTransport:
    """Blocking-socket client for a live gateway server.

    Args:
        host / port: Gateway server address.
        connect_timeout: Seconds to wait for the TCP connect.
        read_timeout: Seconds any single read or write may block
            (``None`` blocks forever).

    Raises:
        GatewayTimeout: If the connect times out.
        GatewayError: (code ``"transport"``) if the connect fails.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        read_timeout: Optional[float] = 30.0,
    ) -> None:
        try:
            self._sock = socket.create_connection(
                (host, port), timeout=connect_timeout
            )
        except socket.timeout as exc:
            raise GatewayTimeout(
                f"connect to {host}:{port} timed out after {connect_timeout}s"
            ) from exc
        except OSError as exc:
            raise GatewayError(
                "transport", f"connect to {host}:{port} failed: {exc}"
            ) from exc
        self._sock.settimeout(read_timeout)
        self._file = self._sock.makefile("rwb")

    def submit(self, line: str) -> List[str]:
        """Send one request line; responses are read via :meth:`readline`."""
        try:
            self._file.write(line.encode("utf-8") + b"\n")
            self._file.flush()
        except socket.timeout as exc:
            raise GatewayTimeout(f"write timed out: {exc}") from exc
        except OSError as exc:
            raise GatewayError("transport", f"write failed: {exc}") from exc
        return []

    def readline(self) -> Optional[str]:
        """Block (up to the read timeout) for the next response line.

        Raises:
            GatewayTimeout: If no line arrives within the read timeout.
            GatewayError: (code ``"transport"``) on a socket error.
        """
        try:
            raw = self._file.readline()
        except socket.timeout as exc:
            raise GatewayTimeout(f"read timed out: {exc}") from exc
        except OSError as exc:
            raise GatewayError("transport", f"read failed: {exc}") from exc
        if not raw:
            return None
        return raw.decode("utf-8").strip()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()


Transport = Union[InProcessTransport, TcpTransport]


class GatewayClient:
    """Request/response client with deferred-response correlation."""

    def __init__(self, transport: Transport) -> None:
        self.transport = transport
        self._next_id = 0
        self._inbox: Dict[Any, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def send(self, op: str, **operands: Any) -> int:
        """Send one request; return its id without waiting for a reply."""
        request_id = self._next_id
        self._next_id += 1
        request: Dict[str, Any] = {"id": request_id, "op": op}
        request.update(operands)
        line = json.dumps(request, sort_keys=True, separators=(",", ":"))
        self._stash(self.transport.submit(line))
        return request_id

    def _stash(self, lines: List[str]) -> None:
        for line in lines:
            response = json.loads(line)
            self._inbox[response.get("id")] = response

    def collect(self, request_id: int, wait: bool = True) -> Optional[Dict[str, Any]]:
        """Fetch the response to ``request_id``.

        Args:
            request_id: Id returned by :meth:`send`.
            wait: Block (reading the transport) until the response
                arrives.  With ``wait=False``, return ``None`` if it is
                not here yet — e.g. an admit still queued in a batch.

        Raises:
            GatewayError: If waiting and the transport cannot produce
                the response (in-process deferred batch, closed
                socket).
        """
        while request_id not in self._inbox:
            if not wait:
                return None
            line = self.transport.readline()
            if line is None:
                raise GatewayError(
                    "transport",
                    f"response to request {request_id} is not available "
                    "(batched admit pending? connection closed?)",
                )
            self._stash([line])
        return self._inbox.pop(request_id)

    def call(self, op: str, **operands: Any) -> Dict[str, Any]:
        """Send one request and return its (checked) response.

        Raises:
            GatewayError: On an error response.
        """
        response = self.collect(self.send(op, **operands))
        assert response is not None
        if not response.get("ok"):
            raise GatewayError(
                str(response.get("error", "unknown")),
                str(response.get("detail", "")),
                response=response,
            )
        return response

    def close(self) -> None:
        self.transport.close()

    # ------------------------------------------------------------------
    # Operation helpers
    # ------------------------------------------------------------------

    def register(self, pipeline: str, policy: Dict[str, Any]) -> Dict[str, Any]:
        return self.call("register", pipeline=pipeline, policy=policy)

    def admit(self, pipeline: str, task: PipelineTask) -> Dict[str, Any]:
        """Admit synchronously (the pipeline must respond unbatched)."""
        return self.call("admit", pipeline=pipeline, task=task_to_wire(task))

    def submit_admit(self, pipeline: str, task: PipelineTask) -> int:
        """Queue an admit on a batched pipeline; correlate via the id."""
        return self.send("admit", pipeline=pipeline, task=task_to_wire(task))

    def drain(self) -> Dict[str, Any]:
        """Flush all pending batches; afterwards every admit answered."""
        return self.call("drain")

    def stats(self, pipeline: Optional[str] = None) -> Dict[str, Any]:
        if pipeline is None:
            return self.call("stats")
        return self.call("stats", pipeline=pipeline)


@dataclass(frozen=True)
class RetryPolicy:
    """Deadline-aware retry schedule with seeded jitter.

    Wraps the fault-model's :class:`BackoffPolicy` (same geometric
    growth, same attempt accounting) and adds a symmetric jitter
    fraction drawn from a seeded RNG, so retry storms decorrelate but
    every run with the same seed schedules identical delays.

    Attributes:
        base_delay: Delay before the first retry (> 0).
        multiplier: Geometric growth factor per retry (>= 1).
        max_attempts: Total attempts, the initial one included (>= 1).
        jitter: Symmetric jitter fraction in ``[0, 1]``: the delay for
            attempt ``k`` is ``base * multiplier**k`` scaled by a
            uniform factor in ``[1 - jitter, 1 + jitter]``.
        full_jitter: Replace the symmetric scheme with *full jitter*:
            the delay for attempt ``k`` is uniform in
            ``[0, base * multiplier**k]``.  Symmetric jitter keeps
            clients loosely in phase (good for pacing one client);
            full jitter spreads a fleet of synchronized retriers across
            the whole window, which is what collapses a retry storm.
            When set, ``jitter`` is ignored.
        seed: Seed for the jitter RNG (``None`` for entropy).
    """

    base_delay: float = 0.05
    multiplier: float = 2.0
    max_attempts: int = 6
    jitter: float = 0.1
    seed: Optional[int] = None
    full_jitter: bool = False

    def __post_init__(self) -> None:
        # Delegates range validation of the shared fields.
        backoff = BackoffPolicy(
            base_delay=self.base_delay,
            multiplier=self.multiplier,
            max_attempts=self.max_attempts,
        )
        if not (0.0 <= self.jitter <= 1.0):
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        object.__setattr__(self, "_backoff", backoff)

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Jittered delay after the ``attempt``-th failed attempt (0-based)."""
        base: float = self._backoff.delay(attempt)  # type: ignore[attr-defined]
        if self.full_jitter:
            return base * rng.random()
        if not self.jitter:
            return base
        return base * (1.0 + self.jitter * (2.0 * rng.random() - 1.0))


class RetryBudget:
    """Token bucket bounding the *fraction* of traffic that is retries.

    Backoff paces an individual request; it does not stop a fleet of
    clients from collectively multiplying offered load when the server
    is the bottleneck (every timeout mints more requests).  The budget
    closes that loop: each successful call deposits ``refill`` tokens
    (capped at ``capacity``) and each retry withdraws one, so sustained
    retries are limited to ``refill`` per success — roughly a
    ``refill``-fraction of goodput — while the ``capacity`` burst
    absorbs short blips without denying anything.

    Shared by design: hand one instance to every
    :class:`RetryingGatewayClient` talking to the same gateway and the
    cap applies fleet-wide.

    Attributes:
        capacity: Maximum banked tokens (> 0); also the initial balance
            unless ``initial`` overrides it.
        refill: Tokens earned per successful call (>= 0).
        tokens: Current balance.
        denied: Withdrawals refused for lack of tokens.
    """

    def __init__(
        self,
        capacity: float = 10.0,
        refill: float = 0.1,
        initial: Optional[float] = None,
    ) -> None:
        if not math.isfinite(capacity) or capacity <= 0.0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not math.isfinite(refill) or refill < 0.0:
            raise ValueError(f"refill must be >= 0, got {refill}")
        if initial is not None and (not math.isfinite(initial) or initial < 0.0):
            raise ValueError(f"initial must be >= 0, got {initial}")
        self.capacity = capacity
        self.refill = refill
        self.tokens = capacity if initial is None else min(initial, capacity)
        self.denied = 0

    def deposit(self) -> None:
        """Credit one success; the balance never exceeds ``capacity``."""
        self.tokens = min(self.capacity, self.tokens + self.refill)

    def try_spend(self) -> bool:
        """Withdraw one token for a retry; ``False`` (and count) if broke."""
        if approx_le(1.0, self.tokens):
            self.tokens = max(0.0, self.tokens - 1.0)
            return True
        self.denied += 1
        return False


class RetryingGatewayClient:
    """Exactly-once request layer: idempotent rids + bounded retries.

    Every logical request gets one client-generated ``rid`` that is
    re-sent verbatim across retries and reconnects.  The gateway's
    dedup window guarantees the operation executes at most once; the
    retry loop guarantees (within the attempt/deadline budget) that
    the client eventually observes its decision — together: effectively
    exactly-once, even when a timeout leaves the first attempt's fate
    unknown.

    Retryable failures are :class:`GatewayTimeout`, transport errors
    (including connect failures — the client reconnects via
    ``connect``), and the gateway's ``duplicate-request`` bounce (the
    first attempt is still in flight server-side; backing off and
    re-asking returns the cached decision once it settles).  Any other
    error response is a *final* answer and is raised immediately.

    Abandonment mirrors :class:`~repro.faults.degradation.BackoffAdmission`:
    a retry is only taken while it can still matter — once the next
    attempt would start after ``deadline`` (or attempts run out), the
    last failure is re-raised.

    Args:
        connect: Zero-argument factory returning a fresh connected
            :class:`GatewayClient`; called lazily and again after any
            transport-level failure.
        policy: Retry schedule (default :class:`RetryPolicy` with its
            documented defaults).
        budget: Optional :class:`RetryBudget` consulted before every
            retry.  A denied withdrawal abandons the request
            immediately (the last failure is re-raised) even when
            attempts and deadline both had room — the budget is the
            storm brake, not a pacing hint.  Share one instance across
            clients to cap a whole fleet.
        rid_factory: Generator of unique request ids (defaults to
            ``uuid4().hex``).
        clock / sleep: Injectable time sources (monotonic seconds) so
            tests can run the schedule without real waiting.

    Attributes:
        retries: Re-sent requests (excludes each first attempt).
        reconnects: Times the underlying client was rebuilt.
        abandoned: Logical requests given up on (budget exhausted).
        budget_denied: Requests abandoned specifically because the
            retry budget refused a token (subset of ``abandoned``).
    """

    RETRYABLE_CODES = frozenset({"timeout", "transport", "duplicate-request"})

    def __init__(
        self,
        connect: Callable[[], "GatewayClient"],
        policy: Optional[RetryPolicy] = None,
        budget: Optional[RetryBudget] = None,
        rid_factory: Optional[Callable[[], str]] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self._connect = connect
        self.policy = policy if policy is not None else RetryPolicy()
        self.budget = budget
        self._rng = random.Random(self.policy.seed)
        self._rid_factory = (
            rid_factory if rid_factory is not None else (lambda: uuid.uuid4().hex)
        )
        self._clock = clock
        self._sleep = sleep
        self._client: Optional[GatewayClient] = None
        self.retries = 0
        self.reconnects = 0
        self.abandoned = 0
        self.budget_denied = 0

    def _ensure_client(self) -> "GatewayClient":
        if self._client is None:
            self._client = self._connect()
        return self._client

    def _drop_client(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            except Exception:
                pass
            self._client = None
            self.reconnects += 1

    def call(
        self,
        op: str,
        deadline: Optional[float] = None,
        rid: Optional[str] = None,
        **operands: Any,
    ) -> Dict[str, Any]:
        """Issue one logical request, retrying until decided or abandoned.

        Args:
            op: Protocol operation name.
            deadline: Absolute time (on ``clock``'s scale) after which
                starting another attempt is pointless; ``None`` retries
                on attempts alone.
            rid: Pin the idempotency key instead of generating one —
                failover layers pass the *original* rid when re-issuing
                a request against a restarted worker, so the recovered
                dedup window can serve the already-made decision.
            **operands: Request fields (the ``rid`` is added).

        Raises:
            GatewayError: The gateway's final error answer, or — after
                abandonment — the last retryable failure.
        """
        if rid is None:
            rid = self._rid_factory()
        attempt = 0
        while True:
            try:
                response = self._ensure_client().call(op, rid=rid, **operands)
            except GatewayError as exc:
                if exc.code not in self.RETRYABLE_CODES:
                    raise
                if exc.code != "duplicate-request":
                    # Ambiguous transport state: the connection may have
                    # unread responses queued; start clean.  The rid makes
                    # the re-send safe.
                    self._drop_client()
                delay = self.policy.delay(attempt, self._rng)
                attempt += 1
                out_of_attempts = attempt >= self.policy.max_attempts
                past_deadline = deadline is not None and not approx_le(
                    self._clock() + delay, deadline
                )
                if out_of_attempts or past_deadline:
                    self.abandoned += 1
                    raise
                if self.budget is not None and not self.budget.try_spend():
                    self.budget_denied += 1
                    self.abandoned += 1
                    raise
                self.retries += 1
                self._sleep(delay)
            else:
                if self.budget is not None:
                    self.budget.deposit()
                return response

    def admit(
        self,
        pipeline: str,
        task: PipelineTask,
        deadline: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Admit a task exactly once (the pipeline must respond unbatched)."""
        return self.call(
            "admit", deadline=deadline, pipeline=pipeline, task=task_to_wire(task)
        )

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None


def _decision_from_response(response: Dict[str, Any]) -> AdmissionDecision:
    return AdmissionDecision(
        admitted=bool(response["admitted"]),
        region_value=float(response["region_value"]),
        shed=tuple(response.get("shed", ())),
    )


class GatewayControllerProxy:
    """Duck-typed admission controller backed by a gateway pipeline.

    Implements the controller surface a
    :class:`~repro.sim.pipeline.PipelineSimulation` touches —
    ``request``/``request_with_shedding``, ``expire``, the departure
    and idle notifications, ``set_stage_capacity`` — by issuing
    protocol calls.  The served pipeline must be *unbatched*: the
    simulation needs each decision synchronously.  (Whether shedding is
    applied is the pipeline policy's choice; both request methods map
    to the same ``admit`` operation.)
    """

    def __init__(
        self,
        client: GatewayClient,
        pipeline: str,
        num_stages: int,
        reset_on_idle: bool = True,
    ) -> None:
        self.client = client
        self.pipeline = pipeline
        self.num_stages = num_stages
        self.reset_on_idle = reset_on_idle
        self.drop_departures = False
        self.drop_idles = False

    def request(self, task: PipelineTask, now: float) -> AdmissionDecision:
        del now  # the wire task carries its own arrival timestamp
        return _decision_from_response(self.client.admit(self.pipeline, task))

    def request_with_shedding(
        self, task: PipelineTask, now: float
    ) -> AdmissionDecision:
        del now
        return _decision_from_response(self.client.admit(self.pipeline, task))

    def expire(self, now: float) -> None:
        self.client.call("expire", pipeline=self.pipeline, now=now)

    def notify_subtask_departure(self, task_id: Hashable, stage: int) -> None:
        if self.drop_departures:
            return
        self.client.call(
            "depart", pipeline=self.pipeline, task_id=task_id, stage=stage
        )

    def notify_stage_idle(self, stage: int) -> float:
        if self.drop_idles:
            return 0.0
        response = self.client.call("idle", pipeline=self.pipeline, stage=stage)
        return float(response["released"])

    def set_stage_capacity(self, stage: int, capacity: float) -> None:
        self.client.call(
            "capacity", pipeline=self.pipeline, stage=stage, capacity=capacity
        )

    def resync(self, now: float, frontier: Dict[Hashable, int]) -> Dict[str, Any]:
        wire_frontier = {str(task_id): stage for task_id, stage in frontier.items()}
        return self.client.call(
            "resync", pipeline=self.pipeline, now=now, frontier=wire_frontier
        )

    def next_expiry(self) -> float:
        """Expiry wake-ups are server-side; the proxy never schedules one."""
        return math.inf
