"""Fleet chaos gate: network faults + whole-worker crashes, proven safe.

The supervised shard fleet (:mod:`repro.serve.fleet`) claims three
invariants under whole-worker crash: **zero acked admissions lost**,
**zero admissions duplicated**, and every recovered worker's
``registry_fingerprint`` **bitwise identical** to a worker that never
crashed.  This module is the executable proof: a deterministic harness
that runs a real fleet next to a shadow fleet (same code, never
killed), drives both with an identical seeded request stream plus a
per-cycle :class:`~repro.faults.schedule.NetworkFaultSchedule`, and
diffs them line-for-line and fingerprint-for-fingerprint.

Injected per cycle, all from one seeded RNG:

* a **worker kill** (``torn`` / ``after_journal`` / ``after_apply``,
  rotating over every worker), detected either by exit status or by
  missed seq-stamped heartbeats, healed via WAL recovery;
* a **torn frame** — a request line truncated mid-byte, which must
  come back as a structured ``bad-json`` error on both fleets, never
  an exception;
* a **partial write** — a request whose final newline never arrives,
  so no worker ever sees it and the client's idempotent retry must
  recover the decision later;
* a **slow-client stall** — a response so late the client already
  retried, exercising the dedup window;
* a **connection storm** — a burst of health probes, exercising
  liveness-path churn that must never touch the journal.

Mid-run the harness live-migrates one pipeline to a different shard on
both fleets, then deliberately replays the *old* route to prove the
stale-map bounce (``wrong-shard`` + embedded map) re-resolves
correctly.

The report is byte-stable for a given parameter set — ``--selftest``
runs the harness twice and compares bytes — and
:func:`fleet_chaos_gate_failures` turns it into a CI gate.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from collections import OrderedDict
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..faults.schedule import (
    ConnectionStorm,
    NetworkFaultSchedule,
    PartialWrite,
    SlowClientStall,
    TornFrame,
    WorkerKill,
    WORKER_KILL_DETECTIONS,
    WORKER_KILL_KINDS,
)
from .fleet import (
    DEFAULT_MISS_THRESHOLD,
    FleetSupervisor,
    WORKER_UNAVAILABLE,
)
from .gateway import DEFAULT_DEDUP_WINDOW
from .protocol import encode
from .router import ShardMap

__all__ = [
    "FLEET_CHAOS_REPORT_FORMAT",
    "run_fleet_chaos",
    "fleet_chaos_gate_failures",
]

FLEET_CHAOS_REPORT_FORMAT = "repro.serve.fleet-chaos-report/1"

#: The fleet's pipeline population: more pipelines than shards, so
#: every worker owns at least one and the mid-run migration has a
#: donor and a receiver on distinct shards.
_FLEET_POLICIES: Dict[str, Dict[str, Any]] = {
    "api": {"num_stages": 3, "alpha": 0.9, "max_batch": 3},
    "img": {"num_stages": 2, "alpha": 1.0},
    "web": {"num_stages": 2, "alpha": 0.8, "max_batch": 2},
    "etl": {"num_stages": 4, "alpha": 0.95},
    # Online PCP blocking bounds: admits on this pipeline declare
    # shared-resource critical sections, so worker failover must
    # rebuild the derived beta_j / budget state bitwise as well.
    "mtx": {"num_stages": 2, "alpha": 0.9, "locking": True},
}

#: Resource ids the locking pipeline's tasks contend on.
_FLEET_RESOURCES = ("gpu", "cache")


def _build_schedule(
    rng: random.Random, cycle: int, workers: int, ops_per_cycle: int
) -> NetworkFaultSchedule:
    """One cycle's deterministic fault mix.

    Every family fires every cycle (coverage is guaranteed, the gate
    need not hope); *where* in the cycle each lands, which worker dies,
    and how, rotate deterministically so ``cycles >= 3 * workers``
    covers the full (worker × kind) matrix and both detection paths.
    """
    at = lambda: rng.randrange(1, ops_per_cycle)  # noqa: E731
    return NetworkFaultSchedule(
        torn_frames=(TornFrame(at_op=at(), keep=rng.uniform(0.2, 0.8)),),
        partial_writes=(PartialWrite(at_op=at(), cut=rng.uniform(0.2, 0.8)),),
        stalls=(SlowClientStall(at_op=at(), retries=1 + rng.randrange(2)),),
        storms=(ConnectionStorm(at_op=at(), count=2 + rng.randrange(3)),),
        kills=(
            WorkerKill(
                at_op=at(),
                worker=cycle % workers,
                # cycle // workers walks the kind axis while cycle %
                # workers walks the worker axis: 3*workers cycles cover
                # the full (worker x kind) matrix.
                kind=WORKER_KILL_KINDS[(cycle // workers) % len(WORKER_KILL_KINDS)],
                detect=WORKER_KILL_DETECTIONS[cycle % len(WORKER_KILL_DETECTIONS)],
            ),
        ),
    )


def run_fleet_chaos(
    seed: int = 0,
    cycles: int = 12,
    workers: int = 3,
    ops_per_cycle: int = 16,
    state_dir: Optional[Union[str, Path]] = None,
    snapshot_every: int = 20,
    fsync: bool = False,
    dedup_window: int = DEFAULT_DEDUP_WINDOW,
    miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    degradation: bool = False,
) -> Dict[str, Any]:
    """Run the fleet chaos gate; return its byte-stable report.

    Args:
        seed: RNG seed driving the op stream and every fault choice.
        cycles: Fault cycles; each kills exactly one worker.
        workers: Fleet size (shadow fleet matches).
        ops_per_cycle: Client ops generated per cycle.
        state_dir: Root for both fleets' state directories; a private
            temporary directory (removed afterwards) if ``None``.
        snapshot_every: Compaction period for every worker.
        fsync: Run worker journals with per-record fsync.
        dedup_window: Idempotency window size, fleet-wide.
        miss_threshold: Heartbeat misses before restart.
        degradation: Mix authoritative ``set_capacity``/``report``
            degradation ops into the stream, so worker failover also
            has to replay capacity rescales and sacrifices bitwise.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    if ops_per_cycle < 4:
        raise ValueError(f"ops_per_cycle must be >= 4, got {ops_per_cycle}")
    owns_dir = state_dir is None
    root = Path(
        tempfile.mkdtemp(prefix="repro-fleet-chaos-") if owns_dir else state_dir
    )
    try:
        return _run_fleet_chaos(
            rng=random.Random(seed),
            seed=seed,
            cycles=cycles,
            workers=workers,
            ops_per_cycle=ops_per_cycle,
            root=root,
            snapshot_every=snapshot_every,
            fsync=fsync,
            dedup_window=dedup_window,
            miss_threshold=miss_threshold,
            degradation=degradation,
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


def _run_fleet_chaos(
    rng: random.Random,
    seed: int,
    cycles: int,
    workers: int,
    ops_per_cycle: int,
    root: Path,
    snapshot_every: int,
    fsync: bool,
    dedup_window: int,
    miss_threshold: int,
    degradation: bool = False,
) -> Dict[str, Any]:
    names = sorted(_FLEET_POLICIES)
    shard_map = ShardMap.balanced(names, workers)
    fleet = FleetSupervisor(
        workers,
        root / "fleet",
        shard_map=shard_map,
        fsync=fsync,
        snapshot_every=snapshot_every,
        dedup_window=dedup_window,
        miss_threshold=miss_threshold,
    )
    shadow = FleetSupervisor(
        workers,
        root / "shadow",
        shard_map=shard_map,
        fsync=False,
        snapshot_every=snapshot_every,
        dedup_window=dedup_window,
        miss_threshold=miss_threshold,
    )
    fleet.start()
    shadow.start()

    next_id = 0
    next_task_id = 0
    now = 0.0
    id_to_rid: Dict[int, str] = {}
    unacked: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    ledger: Dict[str, Any] = {}
    kill_counts = {kind: 0 for kind in WORKER_KILL_KINDS}
    detect_counts = {detect: 0 for detect in WORKER_KILL_DETECTIONS}
    killed_workers = [0] * workers
    kills_with_pending = 0
    fault_counts = {"torn_frames": 0, "partial_writes": 0, "stalls": 0, "storms": 0}
    torn_frame_errors = 0
    partial_pending: List[Dict[str, Any]] = []
    stall_retries = 0
    storm_probes = 0
    contended_admits = 0
    response_mismatches = 0
    decision_mismatches = 0
    fingerprint_matches = 0
    fingerprint_mismatches = 0
    stale_routes = 0
    stale_route_failures = 0
    heartbeat_rounds = 0
    ops_issued = 0
    degradation_ops = [0]
    migrations: List[Dict[str, Any]] = []

    def fresh_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id

    def ack(response: Dict[str, Any]) -> None:
        nonlocal decision_mismatches
        rid = id_to_rid.get(response.get("id"))
        if rid is None:
            return
        if response.get("error") == "duplicate-request":
            return  # "still queued, retry later" — not a final answer
        unacked.pop(rid, None)
        decision = response.get("admitted")
        if rid in ledger:
            if ledger[rid] != decision:
                decision_mismatches += 1
        else:
            ledger[rid] = decision

    def apply(doc: Dict[str, Any]) -> None:
        nonlocal response_mismatches
        got = fleet.dispatch(doc)
        want = shadow.dispatch(doc)
        if got != want:
            response_mismatches += 1
        for response in got:
            ack(json.loads(response))

    def issue(doc: Dict[str, Any]) -> None:
        id_to_rid[doc["id"]] = doc["rid"]
        if doc["rid"] not in ledger:
            unacked[doc["rid"]] = doc

    def retry(doc: Dict[str, Any]) -> None:
        again = dict(doc)
        again["id"] = fresh_id()
        id_to_rid[again["id"]] = doc["rid"]
        apply(again)

    def gen_op(name: Optional[str] = None) -> Dict[str, Any]:
        nonlocal now, next_task_id, ops_issued, contended_admits
        ops_issued += 1
        now += rng.uniform(0.05, 0.3)
        request_id = fresh_id()
        if name is None:
            name = names[rng.randrange(len(names))]
        stages = _FLEET_POLICIES[name]["num_stages"]
        doc: Dict[str, Any] = {
            "id": request_id,
            "rid": f"r{request_id}",
            "pipeline": name,
        }
        roll = rng.random()
        if roll < 0.62:
            next_task_id += 1
            doc["op"] = "admit"
            doc["task"] = {
                "task_id": next_task_id,
                "arrival": now,
                "deadline": now + rng.uniform(0.8, 2.5),
                "costs": [rng.uniform(0.02, 0.15) for _ in range(stages)],
            }
            if _FLEET_POLICIES[name].get("locking") and rng.random() < 0.7:
                contended_admits += 1
                picks = rng.sample(
                    [(s, r) for s in range(stages) for r in _FLEET_RESOURCES],
                    rng.randrange(1, 3),
                )
                doc["task"]["resources"] = [
                    {
                        "stage": stage,
                        "resource": resource,
                        "max_length": rng.uniform(0.0, 0.08),
                    }
                    for stage, resource in sorted(picks)
                ]
        elif roll < 0.74:
            doc["op"] = "depart"
            doc["task_id"] = rng.randrange(1, max(2, next_task_id + 1))
            doc["stage"] = rng.randrange(stages)
        elif roll < 0.84:
            doc["op"] = "expire"
            doc["now"] = now
        elif roll < 0.92:
            doc["op"] = "idle"
            doc["stage"] = rng.randrange(stages)
        elif degradation and rng.random() < 0.67:
            # The degradation cross: authoritative rescales (and the
            # odd fault report) ride the same failover stream, so a
            # restarted worker must replay re-charges and sacrifices
            # bitwise.  The `degradation` guard short-circuits before
            # the extra rng.random() call, keeping default-mode op
            # streams byte-identical to earlier report versions.
            degradation_ops[0] += 1
            doc["stage"] = rng.randrange(stages)
            if rng.random() < 0.7:
                doc["op"] = "set_capacity"
                doc["capacity"] = rng.choice((0.5, 0.7, 1.0))
            else:
                doc["op"] = "report"
                doc["kind"] = "slowdown"
                doc["ratio"] = rng.choice((0.5, 1.0))
        else:
            doc["op"] = "capacity"
            doc["stage"] = rng.randrange(stages)
            doc["capacity"] = rng.uniform(0.6, 1.0)
        return doc

    def settle_outstanding() -> None:
        for doc in list(unacked.values()):
            retry(doc)
        if unacked:
            drain_id = fresh_id()
            drain_doc = {"id": drain_id, "op": "drain", "rid": f"r{drain_id}"}
            issue(drain_doc)
            apply(drain_doc)
            for doc in list(unacked.values()):
                retry(doc)

    def torn_frame(fault: TornFrame) -> None:
        """A request line cut mid-byte must bounce as a structured error."""
        nonlocal torn_frame_errors, response_mismatches
        doc = gen_op()  # never issued: the client sees the connection die
        line = encode(doc)
        cut = max(1, min(len(line) - 1, int(len(line) * fault.keep)))
        torn = line[:cut]
        shard = fleet.shard_for(doc)
        target = shard if shard is not None else 0
        got = fleet.workers[target].handle_line(torn)
        want = shadow.workers[target].handle_line(torn)
        if got != want:
            response_mismatches += 1
        if (
            len(got) == 1
            and json.loads(got[0]).get("ok") is False
            and json.loads(got[0]).get("error") in ("bad-json", "bad-request")
        ):
            torn_frame_errors += 1
        fault_counts["torn_frames"] += 1

    def partial_write(fault: PartialWrite) -> None:
        """The newline never lands: no worker sees the op; retry later."""
        doc = gen_op()
        issue(doc)
        partial_pending.append(doc)
        fault_counts["partial_writes"] += 1

    def slow_client_stall(fault: SlowClientStall) -> None:
        nonlocal stall_retries
        doc = gen_op()
        issue(doc)
        apply(doc)
        for _ in range(fault.retries):
            stall_retries += 1
            retry(doc)
        fault_counts["stalls"] += 1

    def connection_storm(fault: ConnectionStorm) -> None:
        """A probe burst: liveness churn that must never touch a journal."""
        nonlocal storm_probes, heartbeat_rounds
        before = [worker.durable.journal.last_seq for worker in fleet.workers]
        for _ in range(fault.count):
            heartbeat_rounds += 1
            fleet.probe()
            storm_probes += workers
        after = [worker.durable.journal.last_seq for worker in fleet.workers]
        if before != after:
            fault_counts.setdefault("storm_journal_writes", 0)
            fault_counts["storm_journal_writes"] += 1
        fault_counts["storms"] += 1

    def kill_worker(fault: WorkerKill) -> None:
        nonlocal kills_with_pending, fingerprint_matches, fingerprint_mismatches
        nonlocal heartbeat_rounds
        victim = fault.worker
        # The in-flight op must be headed for the victim, so generate
        # it against a pipeline the victim owns.
        owned = fleet.shard_map.owned_by(victim)
        doc = gen_op(name=owned[rng.randrange(len(owned))])
        issue(doc)
        if fault.kind == "after_journal":
            # Durable but unacked on the fleet; the shadow applies it
            # now (recovery will replay it on the fleet side).
            shadow.dispatch(doc)
        elif fault.kind == "after_apply":
            # Applied on both sides; every response line is lost.
            fleet.workers[victim].handle_line(encode(doc))
            shadow.dispatch(doc)
        victim_worker = fleet.workers[victim]
        if victim_worker.durable is not None and any(
            p.pending for p in victim_worker.durable.gateway.registry
        ):
            kills_with_pending += 1
        victim_worker.kill(
            kind=fault.kind,
            doc=doc if fault.kind in ("torn", "after_journal") else None,
            keep=rng.uniform(0.1, 0.9),
        )
        kill_counts[fault.kind] += 1
        detect_counts[fault.detect] += 1
        killed_workers[victim] += 1
        if fault.detect == "heartbeat":
            # The supervisor only learns of the death when seq-stamped
            # probes go unanswered past the miss threshold.
            while fleet.monitor.states[victim] != WORKER_UNAVAILABLE:
                heartbeat_rounds += 1
                fleet.probe()
            fleet.heal()
        else:
            # Exit-status detection: the supervisor reaps the dead
            # child immediately and restarts it.
            fleet.restart(victim)
        heartbeat_rounds += 1
        fleet.probe()  # the recovered worker re-arms to healthy
        if fleet.workers[victim].fingerprint() == shadow.workers[victim].fingerprint():
            fingerprint_matches += 1
        else:
            fingerprint_mismatches += 1
        settle_outstanding()

    def exercise_stale_route(pipeline: str, old_shard: int) -> None:
        """Replay the pre-migration route; the bounce must re-resolve."""
        nonlocal stale_routes, stale_route_failures, response_mismatches
        doc = gen_op(name=pipeline)
        issue(doc)
        got = fleet.workers[old_shard].handle_line(encode(doc))
        want = shadow.workers[old_shard].handle_line(encode(doc))
        if got != want:
            response_mismatches += 1
        bounce = json.loads(got[0]) if got else {}
        if bounce.get("error") != "wrong-shard" or "map" not in bounce:
            stale_route_failures += 1
            return
        resolved = ShardMap.from_wire(bounce["map"])
        owner = resolved.shard_of(pipeline)
        if owner == old_shard or resolved.version <= 1:
            stale_route_failures += 1
            return
        stale_routes += 1
        # Re-issue on the authoritative owner with the SAME rid: the
        # re-route must not double-apply.
        retry(doc)

    # -- drive --------------------------------------------------------

    for name in names:
        register_id = fresh_id()
        register_doc = {
            "id": register_id,
            "rid": f"r{register_id}",
            "op": "register",
            "pipeline": name,
            "policy": dict(_FLEET_POLICIES[name]),
        }
        issue(register_doc)
        apply(register_doc)

    migrate_cycle = cycles // 2
    for cycle in range(cycles):
        schedule = _build_schedule(rng, cycle, workers, ops_per_cycle)
        fault_at: Dict[int, List[Any]] = {}
        for family in (
            schedule.torn_frames
            + schedule.partial_writes
            + schedule.stalls
            + schedule.storms
            + schedule.kills
        ):
            fault_at.setdefault(family.at_op, []).append(family)
        killed_this_cycle = False
        for index in range(ops_per_cycle):
            for fault in fault_at.get(index, []):
                if isinstance(fault, TornFrame):
                    torn_frame(fault)
                elif isinstance(fault, PartialWrite):
                    partial_write(fault)
                elif isinstance(fault, SlowClientStall):
                    slow_client_stall(fault)
                elif isinstance(fault, ConnectionStorm):
                    connection_storm(fault)
                elif isinstance(fault, WorkerKill):
                    kill_worker(fault)
                    killed_this_cycle = True
            doc = gen_op()
            issue(doc)
            apply(doc)
        assert killed_this_cycle  # every cycle's schedule holds one kill

        if cycle == migrate_cycle:
            migrated = names[0]
            old_shard = fleet.shard_map.shard_of(migrated)
            new_shard = (old_shard + 1) % workers
            fleet.migrate(migrated, new_shard)
            shadow.migrate(migrated, new_shard)
            migrations.append(
                {
                    "pipeline": migrated,
                    "from": old_shard,
                    "to": new_shard,
                    "map_version": fleet.shard_map.version,
                }
            )
            exercise_stale_route(migrated, old_shard)
            settle_outstanding()

        # Retried partial writes: the connection died before the
        # newline, so the op reaches the fleet for the first time here.
        for doc in partial_pending:
            retry(doc)
        partial_pending.clear()

    final_drain_id = fresh_id()
    final_drain = {"id": final_drain_id, "op": "drain", "rid": f"r{final_drain_id}"}
    issue(final_drain)
    apply(final_drain)
    for doc in list(unacked.values()):
        retry(doc)

    fleet_prints = fleet.fingerprints()
    shadow_prints = shadow.fingerprints()
    final_identical = fleet_prints == shadow_prints
    acked_admitted = sum(1 for decision in ledger.values() if decision is True)
    counted_admitted = sum(
        pipeline.counters.admitted
        for worker in fleet.workers
        if worker.durable is not None
        for pipeline in worker.durable.gateway.registry
    )
    shadow_admitted = sum(
        pipeline.counters.admitted
        for worker in shadow.workers
        if worker.durable is not None
        for pipeline in worker.durable.gateway.registry
    )
    health = fleet.fleet_health()
    stats = fleet.fleet_stats()
    fleet_dedup = sum(
        worker.durable.gateway.dedup_hits
        for worker in fleet.workers
        if worker.durable is not None
    )
    shadow_dedup = sum(
        worker.durable.gateway.dedup_hits
        for worker in shadow.workers
        if worker.durable is not None
    )
    bounced = sum(
        worker.gateway.bounced
        for worker in fleet.workers
        if worker.gateway is not None
    )
    fleet_rescales = sum(
        pipeline.counters.rescales
        for worker in fleet.workers
        if worker.durable is not None
        for pipeline in worker.durable.gateway.registry
    )
    fleet_sacrificed = sum(
        pipeline.counters.sacrificed
        for worker in fleet.workers
        if worker.durable is not None
        for pipeline in worker.durable.gateway.registry
    )
    recoveries = fleet.recoveries
    fleet.close()
    shadow.close()

    return {
        "format": FLEET_CHAOS_REPORT_FORMAT,
        "seed": seed,
        "cycles": cycles,
        "workers": workers,
        "ops_per_cycle": ops_per_cycle,
        "snapshot_every": snapshot_every,
        "fsync": fsync,
        "miss_threshold": miss_threshold,
        "ops_issued": ops_issued,
        "kills": {
            **kill_counts,
            "total": sum(kill_counts.values()),
            "by_worker": list(killed_workers),
            "with_pending_batch": kills_with_pending,
        },
        "detection": {
            **detect_counts,
            "heartbeat_rounds": heartbeat_rounds,
            "seq_regressions": fleet.monitor.seq_regressions,
            "transitions": len(fleet.monitor.transitions),
        },
        "faults": {
            **fault_counts,
            "torn_frame_errors": torn_frame_errors,
            "stall_retries": stall_retries,
            "storm_probes": storm_probes,
            "contended_admits": contended_admits,
        },
        "routing": {
            "map_version": fleet.shard_map.version,
            "migrations": migrations,
            "stale_routes_resolved": stale_routes,
            "stale_route_failures": stale_route_failures,
            "wrong_shard_bounces": bounced,
        },
        "recoveries": {
            "count": len(recoveries),
            "snapshot_loads": sum(1 for r in recoveries if r.snapshot_loaded),
            "replayed": sum(r.replayed for r in recoveries),
            "skipped": sum(r.skipped for r in recoveries),
            "truncated_bytes": sum(r.truncated_bytes for r in recoveries),
        },
        "dedup_hits": {"fleet": fleet_dedup, "shadow": shadow_dedup},
        "degradation": {
            "ops": degradation_ops[0],
            "rescales": fleet_rescales,
            "sacrificed": fleet_sacrificed,
        },
        "admissions": {
            "acked_admitted": acked_admitted,
            "counted_admitted": counted_admitted,
            "shadow_admitted": shadow_admitted,
            "lost": max(0, acked_admitted - counted_admitted),
            "duplicated": max(0, counted_admitted - acked_admitted),
            "decision_mismatches": decision_mismatches,
            "response_mismatches": response_mismatches,
            "unresolved": len(unacked),
        },
        "equivalence": {
            "fingerprint_matches": fingerprint_matches,
            "fingerprint_mismatches": fingerprint_mismatches,
            "final_identical": final_identical,
        },
        "aggregation": {
            "health_degraded": health["degraded"],
            "health_unavailable": health["unavailable"],
            "stats_pipelines": sorted(stats["pipelines"]),
            "stats_shards_reporting": sum(
                1
                for entry in stats["shards"].values()
                if entry["stats"] is not None
            ),
        },
    }


def fleet_chaos_gate_failures(
    report: Dict[str, Any], min_recoveries: int = 10
) -> List[str]:
    """Check a fleet chaos report against the failover acceptance gates."""
    failures: List[str] = []
    admissions = report["admissions"]
    if admissions["lost"]:
        failures.append(f"{admissions['lost']} acked admissions lost to kills")
    if admissions["duplicated"]:
        failures.append(f"{admissions['duplicated']} admissions double-counted")
    if admissions["decision_mismatches"]:
        failures.append(
            f"{admissions['decision_mismatches']} retries changed their decision"
        )
    if admissions["response_mismatches"]:
        failures.append(
            f"{admissions['response_mismatches']} fleet/shadow response divergences"
        )
    if admissions["unresolved"]:
        failures.append(f"{admissions['unresolved']} requests never acknowledged")
    equivalence = report["equivalence"]
    if equivalence["fingerprint_mismatches"]:
        failures.append(
            f"{equivalence['fingerprint_mismatches']} post-recovery fingerprint "
            "mismatches"
        )
    if not equivalence["final_identical"]:
        failures.append("final fleet/shadow fingerprints differ on some shard")
    if report["recoveries"]["count"] < min_recoveries:
        failures.append(
            f"only {report['recoveries']['count']} worker recoveries ran "
            f"(need >= {min_recoveries})"
        )
    kills = report["kills"]
    for kind in WORKER_KILL_KINDS:
        if kills[kind] == 0:
            failures.append(f"kill kind {kind!r} was never exercised")
    for worker, count in enumerate(kills["by_worker"]):
        if count == 0:
            failures.append(f"worker {worker} was never killed")
    if kills["with_pending_batch"] == 0:
        failures.append("no kill landed while an admission batch was pending")
    detection = report["detection"]
    for detect in WORKER_KILL_DETECTIONS:
        if detection[detect] == 0:
            failures.append(f"detection path {detect!r} was never exercised")
    if detection["seq_regressions"]:
        failures.append(
            f"{detection['seq_regressions']} heartbeats saw the journal "
            "sequence regress (recovered worker lost durable state)"
        )
    faults = report["faults"]
    if faults["torn_frames"] == 0:
        failures.append("no torn frames were injected")
    if faults["torn_frame_errors"] != faults["torn_frames"]:
        failures.append(
            f"{faults['torn_frames'] - faults['torn_frame_errors']} torn frames "
            "did not come back as structured errors"
        )
    if faults["partial_writes"] == 0:
        failures.append("no partial writes were injected")
    if faults["stall_retries"] == 0:
        failures.append("no slow-client stall retries were injected")
    if faults["storms"] == 0:
        failures.append("no connection storms were injected")
    if faults.get("contended_admits", 0) == 0:
        failures.append(
            "no resource-bearing admissions exercised the locking pipeline"
        )
    if faults.get("storm_journal_writes"):
        failures.append("a connection storm wrote to a journal")
    routing = report["routing"]
    if not routing["migrations"]:
        failures.append("no live migration was exercised")
    if routing["stale_routes_resolved"] == 0:
        failures.append("no stale route was bounced and re-resolved")
    if routing["stale_route_failures"]:
        failures.append(
            f"{routing['stale_route_failures']} stale routes failed to re-resolve"
        )
    if report["recoveries"]["snapshot_loads"] == 0:
        failures.append("no recovery ever loaded a compaction snapshot")
    aggregation = report["aggregation"]
    if aggregation["stats_shards_reporting"] != report["workers"]:
        failures.append(
            "cross-shard stats aggregation missing "
            f"{report['workers'] - aggregation['stats_shards_reporting']} shards"
        )
    return failures
