"""Run a standalone gateway server: ``python -m repro.serve``.

With ``--state-dir`` the gateway is *durable*: it recovers from the
directory's snapshot + journal on startup (creating both on first
run), then journals every state-mutating operation before applying
it.  Kill the process at any point and restart with the same
``--state-dir`` — admitted state, batching queues, and the idempotency
window come back bitwise identical (see ``repro.serve.recovery``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .gateway import serve_forever
from .journal import DEFAULT_SNAPSHOT_EVERY


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the admission-control gateway over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    parser.add_argument(
        "--state-dir",
        help="durable mode: recover from (and journal to) this directory",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal after every record (durable mode only)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=DEFAULT_SNAPSHOT_EVERY,
        help="compact the journal into a snapshot every N journaled ops",
    )
    args = parser.parse_args(argv)
    gateway = None
    if args.state_dir is not None:
        from .recovery import recover

        gateway, report = recover(
            args.state_dir,
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
        )
        print(
            f"recovered from {args.state_dir}: "
            f"snapshot_seq={report.snapshot_seq} replayed={report.replayed} "
            f"truncated_bytes={report.truncated_bytes} "
            f"pipelines={report.pipelines}",
            flush=True,
        )
    elif args.fsync:
        parser.error("--fsync requires --state-dir")
    try:
        asyncio.run(serve_forever(args.host, args.port, gateway))
    except KeyboardInterrupt:
        pass
    finally:
        if gateway is not None:
            gateway.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
