"""Run a standalone gateway server: ``python -m repro.serve``.

With ``--state-dir`` the gateway is *durable*: it recovers from the
directory's snapshot + journal on startup (creating both on first
run), then journals every state-mutating operation before applying
it.  Kill the process at any point and restart with the same
``--state-dir`` — admitted state, batching queues, and the idempotency
window come back bitwise identical (see ``repro.serve.recovery``).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .gateway import install_event_loop, serve_forever
from .journal import DEFAULT_SNAPSHOT_EVERY


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the admission-control gateway over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    parser.add_argument(
        "--state-dir",
        help="durable mode: recover from (and journal to) this directory",
    )
    parser.add_argument(
        "--fsync",
        action="store_true",
        help="fsync the journal after every record (durable mode only)",
    )
    parser.add_argument(
        "--snapshot-every",
        type=int,
        default=DEFAULT_SNAPSHOT_EVERY,
        help="compact the journal into a snapshot every N journaled ops",
    )
    parser.add_argument(
        "--shard-index",
        type=int,
        help="fleet mode: serve only pipelines this shard owns",
    )
    parser.add_argument(
        "--shard-count",
        type=int,
        help="fleet mode: total shards in the pipeline->shard map",
    )
    parser.add_argument(
        "--map-version",
        type=int,
        default=1,
        help="fleet mode: version of the installed shard map",
    )
    parser.add_argument(
        "--transport",
        choices=("auto", "stdlib", "uvloop"),
        default="auto",
        help=(
            "event-loop backend: uvloop when available (auto, the "
            "default), uvloop-or-fail, or the stdlib asyncio loop; "
            "wire bytes are identical on every backend"
        ),
    )
    args = parser.parse_args(argv)
    try:
        loop_backend = install_event_loop(args.transport)
    except RuntimeError as exc:
        parser.error(str(exc))
    if args.transport != "stdlib":
        print(f"event loop backend: {loop_backend}", flush=True)
    if (args.shard_index is None) != (args.shard_count is None):
        parser.error("--shard-index and --shard-count must be given together")
    durable = None
    gateway = None
    if args.state_dir is not None:
        from .recovery import recover

        durable, report = recover(
            args.state_dir,
            fsync=args.fsync,
            snapshot_every=args.snapshot_every,
        )
        gateway = durable
        print(
            f"recovered from {args.state_dir}: "
            f"snapshot_seq={report.snapshot_seq} replayed={report.replayed} "
            f"truncated_bytes={report.truncated_bytes} "
            f"pipelines={report.pipelines}",
            flush=True,
        )
    elif args.fsync:
        parser.error("--fsync requires --state-dir")
    if args.shard_index is not None:
        from .gateway import AdmissionGateway
        from .router import ShardGateway, ShardMap

        shard_map = ShardMap(shards=args.shard_count, version=args.map_version)
        gateway = ShardGateway(
            gateway if gateway is not None else AdmissionGateway(),
            args.shard_index,
            shard_map,
        )
        print(
            f"shard {args.shard_index}/{args.shard_count} "
            f"(map version {shard_map.version})",
            flush=True,
        )
    try:
        asyncio.run(serve_forever(args.host, args.port, gateway))
    except KeyboardInterrupt:
        pass
    finally:
        if durable is not None:
            durable.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
