"""Run a standalone gateway server: ``python -m repro.serve``."""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import Optional, Sequence

from .gateway import serve_forever


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve the admission-control gateway over TCP.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=0, help="bind port (0 picks a free port)"
    )
    args = parser.parse_args(argv)
    try:
        asyncio.run(serve_forever(args.host, args.port))
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    sys.exit(main())
