"""Wire protocol of the admission gateway: newline-delimited JSON.

One request per line, one or more JSON responses per request (batched
``admit`` responses are deferred until their batch flushes).  The
protocol is transport-agnostic — the same lines flow over TCP or the
in-process transport — and strictly deterministic: responses are a pure
function of the request sequence, never of wall-clock time.

Request envelope::

    {"id": 7, "op": "admit", "pipeline": "web", ...operands}

Response envelope::

    {"id": 7, "op": "admit", "ok": true, ...payload}
    {"id": 7, "op": "admit", "ok": false, "error": "unknown-pipeline",
     "detail": "..."}

Idempotency: a request may carry an optional ``rid`` — a
client-chosen unique string (a UUID in practice).  The gateway
remembers the response it gave each ``rid`` inside a bounded
deduplication window; a retry with the same ``rid`` receives the
*cached* decision (with the ``id`` echo rewritten to the retry's own
``id``) instead of re-running the operation, so a client that lost a
response to a crash or connection drop can retry without
double-admitting.  A retry that races its original while the original
is still queued in an admission batch gets a ``duplicate-request``
error and must retry again later.

Numbers in requests must be finite: ``Infinity``/``NaN`` literals are
rejected as ``bad-json`` (the write-ahead journal and the canonical
response encoding have no spelling for them).

Operations (see DESIGN.md §9 for the mapping onto the paper's
Section-4 bookkeeping rules):

==============  ========================================================
``health``      Liveness probe; pipeline count and drain state.
``register``    Create a named pipeline from a policy document.
``unregister``  Flush and remove a pipeline.
``admit``       Run the feasible-region admission test for one arrival.
``depart``      Record a subtask departure (stage bookkeeping).
``idle``        Apply the idle-reset rule at one stage.
``expire``      Lapse contributions whose deadlines passed.
``capacity``    Declare degraded stage capacity (prospective only —
                future admissions are charged at the new level).
``set_capacity``  Authoritative capacity change: re-charge the admitted
                set, then sacrifice tasks until the region holds.
``report``      Fault observation (overrun/slowdown/ok); confirmed
                changes trigger the same rescale-and-repair.
``resync``      Rebuild controller state from a ground-truth frontier.
``snapshot``    Serialize full controller state.
``restore``     Instantiate a pipeline from a snapshot, then audit it.
``stats``       Serving counters and region state, per pipeline.
``drain``       Flush every pending admission batch.
==============  ========================================================
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Tuple

from ..core.task import PipelineTask, make_task
from ..locking.model import resources_from_wire, resources_to_wire

__all__ = [
    "OPS",
    "PIPELINE_OPS",
    "MAX_REQUEST_CHARS",
    "MAX_REQUEST_DEPTH",
    "ProtocolError",
    "parse_request",
    "encode",
    "ok_response",
    "admit_response",
    "error_response",
    "task_to_wire",
    "task_from_wire",
    "frontier_from_wire",
    "json_safe",
    "rewrite_response_id",
]

#: Every operation the gateway dispatches, in documentation order.
OPS = (
    "health",
    "register",
    "unregister",
    "admit",
    "depart",
    "idle",
    "expire",
    "capacity",
    "set_capacity",
    "report",
    "resync",
    "snapshot",
    "restore",
    "stats",
    "drain",
)

#: Operations that require a ``pipeline`` operand.
PIPELINE_OPS = frozenset(OPS) - {"health", "stats", "drain"}

#: Largest request line the gateway will parse.  Big enough for a full
#: ``restore`` snapshot, small enough that a hostile client cannot make
#: a single line balloon server memory.
MAX_REQUEST_CHARS = 1 << 20

#: Deepest container nesting a request may carry.  The stdlib JSON
#: *parser* survives well past this, but the canonical *encoder* (and
#: therefore the write-ahead journal) recurses per level — a request
#: that parses but cannot be journaled would escape the "never raises
#: for request content" contract, so depth is bounded at parse time.
MAX_REQUEST_DEPTH = 32


class ProtocolError(ValueError):
    """A malformed or unserviceable request.

    Attributes:
        code: Short machine-readable error code (e.g.
            ``"bad-request"``, ``"unknown-pipeline"``).
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


def _reject_nonfinite(token: str) -> float:
    raise ValueError(f"non-finite number {token} is not allowed in requests")


def _validate_payload(request: Dict[str, Any]) -> None:
    """Reject payloads the canonical encoders cannot round-trip.

    Two hazards survive ``json.loads`` and would otherwise detonate
    later, inside the write-ahead journal's ``allow_nan=False``
    canonical encoder: number *overflow* (``1e999`` parses to ``inf``
    without ever invoking ``parse_constant``) and container nesting
    deep enough to blow the recursive encoder's stack.  Both are caught
    here with one iterative walk so ``handle_line`` keeps its
    never-raises contract.

    Raises:
        ProtocolError: On a non-finite number anywhere in the request,
            or nesting deeper than :data:`MAX_REQUEST_DEPTH`.
    """
    stack: List[Tuple[Any, int]] = [(request, 1)]
    while stack:
        value, depth = stack.pop()
        if depth > MAX_REQUEST_DEPTH:
            raise ProtocolError(
                "too-deep",
                f"request nesting exceeds {MAX_REQUEST_DEPTH} levels",
            )
        if isinstance(value, dict):
            for child in value.values():
                if isinstance(child, (dict, list)):
                    stack.append((child, depth + 1))
                elif isinstance(child, float) and not math.isfinite(child):
                    raise ProtocolError(
                        "bad-json", "non-finite number is not allowed in requests"
                    )
        elif isinstance(value, list):
            for child in value:
                if isinstance(child, (dict, list)):
                    stack.append((child, depth + 1))
                elif isinstance(child, float) and not math.isfinite(child):
                    raise ProtocolError(
                        "bad-json", "non-finite number is not allowed in requests"
                    )


def parse_request(line: str) -> Dict[str, Any]:
    """Parse and validate one request line.

    Returns:
        The decoded request object with a validated envelope.

    Raises:
        ProtocolError: On an oversized line, malformed JSON (including
            non-finite number literals and overflowing numbers like
            ``1e999``), nesting deeper than :data:`MAX_REQUEST_DEPTH`,
            a non-object payload, a missing/unknown ``op``, a missing
            ``pipeline`` operand, or an ill-typed ``rid``.
    """
    if len(line) > MAX_REQUEST_CHARS:
        raise ProtocolError(
            "too-large",
            f"request line of {len(line)} chars exceeds the "
            f"{MAX_REQUEST_CHARS}-char limit",
        )
    try:
        request = json.loads(line, parse_constant=_reject_nonfinite)
    except RecursionError:
        # Deeply nested input overruns the parser's stack long before
        # _validate_payload could see it.
        raise ProtocolError(
            "too-deep", "request nesting overran the JSON parser"
        ) from None
    except ValueError as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    _validate_payload(request)
    op = request.get("op")
    if not isinstance(op, str) or op not in OPS:
        raise ProtocolError(
            "unknown-op", f"op must be one of {', '.join(OPS)}; got {op!r}"
        )
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("bad-request", "id must be an integer or string")
    rid = request.get("rid")
    if rid is not None and (
        not isinstance(rid, str) or not rid or len(rid) > 200
    ):
        raise ProtocolError(
            "bad-request", "rid must be a non-empty string of at most 200 chars"
        )
    if op in PIPELINE_OPS and not isinstance(request.get("pipeline"), str):
        raise ProtocolError(
            "bad-request", f"op {op!r} requires a string 'pipeline' operand"
        )
    return request


def json_safe(value: Any) -> Any:
    """Map non-JSON floats (inf/nan) to ``None``, recursively."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def encode(payload: Dict[str, Any]) -> str:
    """Render one response object as a canonical single-line JSON string."""
    return json.dumps(json_safe(payload), sort_keys=True, separators=(",", ":"))


def ok_response(request: Dict[str, Any], **payload: Any) -> str:
    """A success response echoing the request's ``id`` and ``op``."""
    body: Dict[str, Any] = {"id": request.get("id"), "op": request.get("op"), "ok": True}
    body.update(payload)
    return encode(body)


# Precomputed canonical fragments of the admit response.  The envelope
# is immutable — ``{"admitted":..,"id":..,"ok":true,"op":"admit",
# "region_value":..,"shed":[..]}`` with keys already in sorted order —
# so the hot path only has to render the three variable tokens instead
# of building a dict and running the generic sorted-keys encoder.
_ADMIT_TRUE = '{"admitted":true,"id":'
_ADMIT_FALSE = '{"admitted":false,"id":'
_ADMIT_MID = ',"ok":true,"op":"admit","region_value":'
_ADMIT_SHED_EMPTY = ',"shed":[]}'
_ADMIT_SHED = ',"shed":'


def admit_response(
    request: Dict[str, Any],
    admitted: bool,
    region_value: float,
    shed: Any = (),
) -> str:
    """Fast-path encoder for admission decisions.

    Byte-identical to ``ok_response(request, admitted=...,
    region_value=..., shed=list(shed))`` — the differential test pins
    that equivalence — but ~5x cheaper: the immutable envelope is
    served from precomputed canonical fragments and only the ``id``
    echo, the region value, and the shed list are rendered.  Falls back
    to the generic encoder for anything it cannot prove it renders
    canonically.
    """
    request_id = request.get("id")
    if request_id is None:
        id_token = "null"
    elif isinstance(request_id, bool):
        # bool is an int subclass and passes request validation, but
        # encodes as a JSON literal, not via repr().
        id_token = "true" if request_id else "false"
    elif isinstance(request_id, int):
        id_token = repr(request_id)
    elif isinstance(request_id, str):
        id_token = json.dumps(request_id)
    else:
        return ok_response(
            request, admitted=admitted, region_value=region_value, shed=list(shed)
        )
    if request.get("op") != "admit" or not isinstance(region_value, float):
        return ok_response(
            request, admitted=admitted, region_value=region_value, shed=list(shed)
        )
    # json.dumps renders floats with float.__repr__; non-finite values
    # (f(U) saturates to inf at U == 1) canonically become null.
    region_token = repr(region_value) if math.isfinite(region_value) else "null"
    prefix = _ADMIT_TRUE if admitted else _ADMIT_FALSE
    if not shed:
        return prefix + id_token + _ADMIT_MID + region_token + _ADMIT_SHED_EMPTY
    shed_token = json.dumps(
        json_safe(list(shed)), sort_keys=True, separators=(",", ":")
    )
    return (
        prefix + id_token + _ADMIT_MID + region_token + _ADMIT_SHED + shed_token + "}"
    )


def rewrite_response_id(line: str, request: Dict[str, Any]) -> str:
    """Re-encode a cached response with the retry request's ``id`` echo.

    Deduplicated retries receive the originally computed response, but
    the retry correlates replies by its *own* request id — only the
    ``id`` field is rewritten; the decision payload is untouched.
    """
    doc = json.loads(line)
    doc["id"] = request.get("id")
    return encode(doc)


def error_response(
    request: Optional[Dict[str, Any]], code: str, detail: str
) -> str:
    """A failure response; ``request`` may be ``None`` for parse errors."""
    request = request or {}
    return encode(
        {
            "id": request.get("id"),
            "op": request.get("op"),
            "ok": False,
            "error": code,
            "detail": detail,
        }
    )


# ----------------------------------------------------------------------
# Task encoding
# ----------------------------------------------------------------------


def task_to_wire(task: PipelineTask) -> Dict[str, Any]:
    """Encode a task as its wire document."""
    wire: Dict[str, Any] = {
        "task_id": task.task_id,
        "arrival": task.arrival_time,
        "deadline": task.deadline,
        "costs": list(task.computation_times),
    }
    if task.importance:
        wire["importance"] = task.importance
    if task.resources:
        wire["resources"] = resources_to_wire(task.resources)
    return wire


def _require_number(doc: Dict[str, Any], key: str) -> float:
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError("bad-task", f"task field {key!r} must be a number")
    return float(value)


def task_from_wire(doc: Any) -> PipelineTask:
    """Decode and validate a wire task document.

    Raises:
        ProtocolError: On missing/ill-typed fields or model-invariant
            violations (non-positive deadline, negative costs, ...).
    """
    if not isinstance(doc, dict):
        raise ProtocolError("bad-task", "task must be a JSON object")
    task_id = doc.get("task_id")
    if not isinstance(task_id, int) or isinstance(task_id, bool):
        raise ProtocolError("bad-task", "task_id must be an integer")
    costs = doc.get("costs")
    if not isinstance(costs, list) or not costs:
        raise ProtocolError("bad-task", "costs must be a non-empty array")
    importance = doc.get("importance", 0)
    if not isinstance(importance, int) or isinstance(importance, bool):
        raise ProtocolError("bad-task", "importance must be an integer")
    try:
        cost_values: Tuple[float, ...] = tuple(float(c) for c in costs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-task", "costs must be numbers") from exc
    raw_resources = doc.get("resources", [])
    try:
        resources = resources_from_wire(raw_resources)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-task", str(exc)) from exc
    try:
        return make_task(
            arrival_time=_require_number(doc, "arrival"),
            deadline=_require_number(doc, "deadline"),
            computation_times=cost_values,
            importance=importance,
            resources=resources,
            task_id=task_id,
        )
    except ValueError as exc:
        raise ProtocolError("bad-task", str(exc)) from exc


def frontier_from_wire(doc: Any) -> Dict[int, int]:
    """Decode a ``resync`` frontier document (task-id keys arrive as strings)."""
    if not isinstance(doc, dict):
        raise ProtocolError("bad-request", "frontier must be a JSON object")
    frontier: Dict[int, int] = {}
    for key, stage in doc.items():
        try:
            task_id = int(key)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad-request", f"frontier key {key!r} is not a task id"
            ) from exc
        if not isinstance(stage, int) or isinstance(stage, bool):
            raise ProtocolError("bad-request", "frontier stages must be integers")
        frontier[task_id] = stage
    return frontier
