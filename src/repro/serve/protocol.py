"""Wire protocol of the admission gateway: newline-delimited JSON.

One request per line, one or more JSON responses per request (batched
``admit`` responses are deferred until their batch flushes).  The
protocol is transport-agnostic — the same lines flow over TCP or the
in-process transport — and strictly deterministic: responses are a pure
function of the request sequence, never of wall-clock time.

Request envelope::

    {"id": 7, "op": "admit", "pipeline": "web", ...operands}

Response envelope::

    {"id": 7, "op": "admit", "ok": true, ...payload}
    {"id": 7, "op": "admit", "ok": false, "error": "unknown-pipeline",
     "detail": "..."}

Idempotency: a request may carry an optional ``rid`` — a
client-chosen unique string (a UUID in practice).  The gateway
remembers the response it gave each ``rid`` inside a bounded
deduplication window; a retry with the same ``rid`` receives the
*cached* decision (with the ``id`` echo rewritten to the retry's own
``id``) instead of re-running the operation, so a client that lost a
response to a crash or connection drop can retry without
double-admitting.  A retry that races its original while the original
is still queued in an admission batch gets a ``duplicate-request``
error and must retry again later.

Numbers in requests must be finite: ``Infinity``/``NaN`` literals are
rejected as ``bad-json`` (the write-ahead journal and the canonical
response encoding have no spelling for them).

Operations (see DESIGN.md §9 for the mapping onto the paper's
Section-4 bookkeeping rules):

==============  ========================================================
``health``      Liveness probe; pipeline count and drain state.
``register``    Create a named pipeline from a policy document.
``unregister``  Flush and remove a pipeline.
``admit``       Run the feasible-region admission test for one arrival.
``depart``      Record a subtask departure (stage bookkeeping).
``idle``        Apply the idle-reset rule at one stage.
``expire``      Lapse contributions whose deadlines passed.
``capacity``    Declare degraded stage capacity (prospective only —
                future admissions are charged at the new level).
``set_capacity``  Authoritative capacity change: re-charge the admitted
                set, then sacrifice tasks until the region holds.
``report``      Fault observation (overrun/slowdown/ok); confirmed
                changes trigger the same rescale-and-repair.
``resync``      Rebuild controller state from a ground-truth frontier.
``snapshot``    Serialize full controller state.
``restore``     Instantiate a pipeline from a snapshot, then audit it.
``stats``       Serving counters and region state, per pipeline.
``drain``       Flush every pending admission batch.
==============  ========================================================
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.task import PipelineTask, make_task
from ..locking.model import resources_from_wire, resources_to_wire

try:  # Optional accelerator: decode-only, gated below.
    import orjson
except ImportError:  # pragma: no cover - environment without orjson
    orjson = None  # type: ignore[assignment]

__all__ = [
    "OPS",
    "PIPELINE_OPS",
    "MAX_REQUEST_CHARS",
    "MAX_REQUEST_DEPTH",
    "NdjsonFramer",
    "ProtocolError",
    "parse_request",
    "encode",
    "ok_response",
    "admit_response",
    "admit_response_batch",
    "error_response",
    "task_to_wire",
    "task_from_wire",
    "frontier_from_wire",
    "json_safe",
    "rewrite_response_id",
]

#: Every operation the gateway dispatches, in documentation order.
OPS = (
    "health",
    "register",
    "unregister",
    "admit",
    "depart",
    "idle",
    "expire",
    "capacity",
    "set_capacity",
    "report",
    "resync",
    "snapshot",
    "restore",
    "stats",
    "drain",
)

#: Operations that require a ``pipeline`` operand.
PIPELINE_OPS = frozenset(OPS) - {"health", "stats", "drain"}

#: Largest request line the gateway will parse.  Big enough for a full
#: ``restore`` snapshot, small enough that a hostile client cannot make
#: a single line balloon server memory.
MAX_REQUEST_CHARS = 1 << 20

#: Deepest container nesting a request may carry.  The stdlib JSON
#: *parser* survives well past this, but the canonical *encoder* (and
#: therefore the write-ahead journal) recurses per level — a request
#: that parses but cannot be journaled would escape the "never raises
#: for request content" contract, so depth is bounded at parse time.
MAX_REQUEST_DEPTH = 32


class ProtocolError(ValueError):
    """A malformed or unserviceable request.

    Attributes:
        code: Short machine-readable error code (e.g.
            ``"bad-request"``, ``"unknown-pipeline"``).
    """

    def __init__(self, code: str, detail: str) -> None:
        super().__init__(detail)
        self.code = code
        self.detail = detail


def _reject_nonfinite(token: str) -> float:
    raise ValueError(f"non-finite number {token} is not allowed in requests")


def _validate_payload(request: Dict[str, Any]) -> None:
    """Reject payloads the canonical encoders cannot round-trip.

    Two hazards survive ``json.loads`` and would otherwise detonate
    later, inside the write-ahead journal's ``allow_nan=False``
    canonical encoder: number *overflow* (``1e999`` parses to ``inf``
    without ever invoking ``parse_constant``) and container nesting
    deep enough to blow the recursive encoder's stack.  Both are caught
    here with one iterative walk so ``handle_line`` keeps its
    never-raises contract.

    Raises:
        ProtocolError: On a non-finite number anywhere in the request,
            or nesting deeper than :data:`MAX_REQUEST_DEPTH`.
    """
    stack: List[Tuple[Any, int]] = [(request, 1)]
    while stack:
        value, depth = stack.pop()
        if depth > MAX_REQUEST_DEPTH:
            raise ProtocolError(
                "too-deep",
                f"request nesting exceeds {MAX_REQUEST_DEPTH} levels",
            )
        if isinstance(value, dict):
            for child in value.values():
                if isinstance(child, (dict, list)):
                    stack.append((child, depth + 1))
                elif isinstance(child, float) and not math.isfinite(child):
                    raise ProtocolError(
                        "bad-json", "non-finite number is not allowed in requests"
                    )
        elif isinstance(value, list):
            for child in value:
                if isinstance(child, (dict, list)):
                    stack.append((child, depth + 1))
                elif isinstance(child, float) and not math.isfinite(child):
                    raise ProtocolError(
                        "bad-json", "non-finite number is not allowed in requests"
                    )


#: Integer tokens beyond the accelerator's exact range would be
#: silently rounded to floats where the stdlib keeps the
#: arbitrary-precision int, so any line that *may* carry one takes the
#: strict stdlib path.  The accelerator decodes unsigned integers
#: exactly through the full 64-bit range (20 digits up to
#: 18446744073709551615) and signed ones through ``-2**63``, so the
#: dangerous shapes are a run of 20+ digits, or ``-`` followed by 19+
#: digits.  The screen folds every digit to one byte and runs two
#: C-speed substring searches — a regex scan here costs microseconds
#: per line, ``memmem`` costs nanoseconds.  Conservative by design: a
#: long digit run inside a string or a float's integer part also
#: routes to the strict path, which is merely slower, never different.
#: One refinement keeps the dominant float traffic on the fast path: a
#: 20+ digit run immediately after ``.`` is a float's *fraction* (or
#: sits inside a string, or the line is malformed JSON that fails the
#: accelerator anyway), never an integer token — and both parsers
#: round arbitrary-length fractions to the identical nearest double
#: (differentially verified), so those runs are skipped.  Without the
#: refinement every float in ``[1e-4, 1e-3)`` carrying 17 significant
#: digits (20 fraction digits after the leading zeros) would fall back.
_DIGIT_FOLD = bytes.maketrans(b"0123456789", b"\x00" * 10)
_HUGE_POSITIVE_RUN = b"\x00" * 20
_HUGE_NEGATIVE_RUN = b"-" + b"\x00" * 19
_DOT = 0x2E

#: The ASCII subset of ``str.strip``'s whitespace (frames carry no
#: ``\n`` — the framer consumed it).  A frame that still begins with
#: ``{`` after stripping these bytes decodes to a line whose
#: ``str.strip`` result is that same stripped text: any *unicode*
#: whitespace would have to sit inside the braces, where ``strip``
#: cannot reach it.  The gateway's fused frame lane relies on this to
#: skip the ``bytes -> str -> strip`` round trip per line.
_FRAME_WS = b" \t\r\x0b\x0c"


def _folded_holds_huge_int(folded: bytes) -> bool:
    """Whether digit-folded ``folded`` has a possibly-huge integer run.

    ``find`` returns the *first* window of each digit run, so a window
    whose predecessor is itself a digit is the interior of a run whose
    start was already classified — the scan just hops on.  Hopping by
    one and letting C-level ``find`` re-anchor beats walking the run's
    bytes in Python (17-significant-digit floats make 20-digit
    fraction runs the common case on the admission wire).
    """
    pos = folded.find(_HUGE_POSITIVE_RUN)
    while pos >= 0:
        if pos == 0:
            return True
        prev = folded[pos - 1]
        # Run start (prev is neither digit nor dot): a real integer
        # token of 20+ digits.  Dot-preceded or interior: keep going.
        if prev and prev != _DOT:
            return True
        pos = folded.find(_HUGE_POSITIVE_RUN, pos + 1)
    return folded.find(_HUGE_NEGATIVE_RUN) >= 0


def _may_hold_huge_int(line: str) -> bool:
    """Whether ``line`` may contain an integer token the accelerator
    would round (see :data:`_DIGIT_FOLD`); unencodable lines screen
    positive so the strict path owns their error bytes."""
    try:
        folded = line.encode("utf-8").translate(_DIGIT_FOLD)
    except UnicodeEncodeError:
        return True
    return _folded_holds_huge_int(folded)

#: Canonical (interned) instance per op name.  parse_request swaps the
#: freshly parsed op string for the canonical one so every downstream
#: dispatch-dict lookup and ``op != "admit"`` comparison hits the
#: CPython identity fast path.
_OP_CANON = {op: op for op in OPS}


def _validate_envelope(request: Dict[str, Any]) -> Dict[str, Any]:
    """Shared envelope validation (op / id / rid / pipeline operand)."""
    try:
        # One hashed lookup replaces isinstance + membership: the keys
        # are exactly the op strings, no non-string can equal one, and
        # an unhashable op (list/dict) raises into the error path.
        canon = _OP_CANON.get(request.get("op"))
    except TypeError:
        canon = None
    if canon is None:
        op = request.get("op")
        raise ProtocolError(
            "unknown-op", f"op must be one of {', '.join(OPS)}; got {op!r}"
        )
    request["op"] = canon
    request_id = request.get("id")
    if request_id is not None and not isinstance(request_id, (int, str)):
        raise ProtocolError("bad-request", "id must be an integer or string")
    rid = request.get("rid")
    if rid is not None and (
        not isinstance(rid, str) or not rid or len(rid) > 200
    ):
        raise ProtocolError(
            "bad-request", "rid must be a non-empty string of at most 200 chars"
        )
    if canon in PIPELINE_OPS and not isinstance(request.get("pipeline"), str):
        raise ProtocolError(
            "bad-request", f"op {canon!r} requires a string 'pipeline' operand"
        )
    return request


def parse_request(line: str) -> Dict[str, Any]:
    """Parse and validate one request line.

    Decoding prefers the ``orjson`` accelerator when three screens
    prove it cannot diverge from the strict stdlib path: the line is
    within the size limit, its total ``{``/``[`` count bounds nesting
    at :data:`MAX_REQUEST_DEPTH` (each nesting level spends at least
    one opening bracket), and it carries no integer token the
    accelerator would round (see :func:`_may_hold_huge_int`).  The
    accelerator rejects
    ``Infinity``/``NaN`` literals *and* overflowing numbers like
    ``1e999`` outright, so a successful accelerated parse needs no
    payload walk.  Any accelerator failure re-parses on the strict
    path, keeping error bytes identical to the stdlib-only protocol.

    Returns:
        The decoded request object with a validated envelope.

    Raises:
        ProtocolError: On an oversized line, malformed JSON (including
            non-finite number literals and overflowing numbers like
            ``1e999``), nesting deeper than :data:`MAX_REQUEST_DEPTH`,
            a non-object payload, a missing/unknown ``op``, a missing
            ``pipeline`` operand, or an ill-typed ``rid``.
    """
    if len(line) > MAX_REQUEST_CHARS:
        raise ProtocolError(
            "too-large",
            f"request line of {len(line)} chars exceeds the "
            f"{MAX_REQUEST_CHARS}-char limit",
        )
    if orjson is not None:
        # The digit fold doubles as the depth screen's input: ``{`` and
        # ``[`` are single ASCII bytes no UTF-8 continuation byte can
        # alias, so counting them on the folded bytes equals counting
        # them on the string — one encode serves both screens, and the
        # raw encoding also feeds the accelerator (orjson parses bytes
        # directly, skipping its internal re-encode of str input).
        try:
            raw = line.encode("utf-8")
        except UnicodeEncodeError:
            # Unencodable (lone surrogates): strict path owns the bytes.
            return _parse_request_strict(line)
        folded = raw.translate(_DIGIT_FOLD)
        if (
            folded.count(b"{") + folded.count(b"[") <= MAX_REQUEST_DEPTH
            and not _folded_holds_huge_int(folded)
        ):
            try:
                request = orjson.loads(raw)
            except Exception:
                return _parse_request_strict(line)
            if type(request) is not dict:
                raise ProtocolError(
                    "bad-request", "request must be a JSON object"
                )
            # _validate_envelope, inlined (the call and its re-gets
            # are measurable at admission line rate); the strict path
            # below still routes through the shared function.
            try:
                canon = _OP_CANON.get(request.get("op"))
            except TypeError:
                canon = None
            if canon is None:
                op = request.get("op")
                raise ProtocolError(
                    "unknown-op",
                    f"op must be one of {', '.join(OPS)}; got {op!r}",
                )
            request["op"] = canon
            request_id = request.get("id")
            if request_id is not None and not isinstance(request_id, (int, str)):
                raise ProtocolError(
                    "bad-request", "id must be an integer or string"
                )
            rid = request.get("rid")
            if rid is not None and (
                not isinstance(rid, str) or not rid or len(rid) > 200
            ):
                raise ProtocolError(
                    "bad-request",
                    "rid must be a non-empty string of at most 200 chars",
                )
            if canon in PIPELINE_OPS and not isinstance(
                request.get("pipeline"), str
            ):
                raise ProtocolError(
                    "bad-request",
                    f"op {canon!r} requires a string 'pipeline' operand",
                )
            return request
    return _parse_request_strict(line)


def _parse_request_strict(line: str) -> Dict[str, Any]:
    """Stdlib reference parser — the source of truth for error bytes."""
    try:
        request = json.loads(line, parse_constant=_reject_nonfinite)
    except RecursionError:
        # Deeply nested input overruns the parser's stack long before
        # _validate_payload could see it.
        raise ProtocolError(
            "too-deep", "request nesting overran the JSON parser"
        ) from None
    except ValueError as exc:
        raise ProtocolError("bad-json", f"request is not valid JSON: {exc}") from exc
    if not isinstance(request, dict):
        raise ProtocolError("bad-request", "request must be a JSON object")
    _validate_payload(request)
    return _validate_envelope(request)


class NdjsonFramer:
    """Incremental newline framer with asyncio-``readline`` limit semantics.

    Replaces the per-line ``StreamReader.readline()`` loop with chunked
    reads split by a single buffer scan — no ``splitlines`` copies, one
    buffer compaction per feed.  The oversized-line conditions mirror
    ``StreamReader.readuntil`` exactly: a completed frame whose content
    exceeds ``limit`` bytes, or an unterminated tail growing past
    ``limit`` bytes, marks the framer overflowed.  Frames completed
    *before* the oversized segment are still delivered — exactly the
    responses a ``readline()`` loop would have produced before raising.

    Once overflowed the framer is dead: the buffer is dropped and
    further feeds return nothing (the server closes the connection,
    matching the previous ``LimitOverrunError`` handling).
    """

    __slots__ = ("_buf", "_limit", "_overflowed")

    def __init__(self, limit: int) -> None:
        self._buf = bytearray()
        self._limit = limit
        self._overflowed = False

    @property
    def overflowed(self) -> bool:
        """Whether a frame exceeded the limit (connection must close)."""
        return self._overflowed

    @property
    def pending(self) -> int:
        """Bytes buffered awaiting a newline."""
        return len(self._buf)

    def feed(self, data: bytes) -> List[bytes]:
        """Absorb a chunk; return the frames it completed (sans ``\\n``)."""
        if self._overflowed:
            return []
        buf = self._buf
        buf += data
        frames: List[bytes] = []
        start = 0
        while True:
            newline = buf.find(b"\n", start)
            if newline < 0:
                break
            if newline - start > self._limit:
                self._overflowed = True
                break
            frames.append(bytes(buf[start:newline]))
            start = newline + 1
        if start:
            del buf[:start]
        if len(buf) > self._limit:
            self._overflowed = True
        if self._overflowed:
            buf.clear()
        return frames

    def finish(self) -> Optional[bytes]:
        """The trailing unterminated frame at EOF, if any.

        ``readline()`` returns a partial final line when the peer
        closes without a trailing newline; this is that frame.
        """
        if self._overflowed or not self._buf:
            return None
        frame = bytes(self._buf)
        self._buf.clear()
        return frame


def json_safe(value: Any) -> Any:
    """Map non-JSON floats (inf/nan) to ``None``, recursively."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return value


def encode(payload: Dict[str, Any]) -> str:
    """Render one response object as a canonical single-line JSON string."""
    return json.dumps(json_safe(payload), sort_keys=True, separators=(",", ":"))


def ok_response(request: Dict[str, Any], **payload: Any) -> str:
    """A success response echoing the request's ``id`` and ``op``."""
    body: Dict[str, Any] = {"id": request.get("id"), "op": request.get("op"), "ok": True}
    body.update(payload)
    return encode(body)


# Precomputed canonical fragments of the admit response.  The envelope
# is immutable — ``{"admitted":..,"id":..,"ok":true,"op":"admit",
# "region_value":..,"shed":[..]}`` with keys already in sorted order —
# so the hot path only has to render the three variable tokens instead
# of building a dict and running the generic sorted-keys encoder.
_ADMIT_TRUE = '{"admitted":true,"id":'
_ADMIT_FALSE = '{"admitted":false,"id":'
_ADMIT_MID = ',"ok":true,"op":"admit","region_value":'
_ADMIT_SHED_EMPTY = ',"shed":[]}'
_ADMIT_SHED = ',"shed":'


def admit_response(
    request: Dict[str, Any],
    admitted: bool,
    region_value: float,
    shed: Any = (),
) -> str:
    """Fast-path encoder for admission decisions.

    Byte-identical to ``ok_response(request, admitted=...,
    region_value=..., shed=list(shed))`` — the differential test pins
    that equivalence — but ~5x cheaper: the immutable envelope is
    served from precomputed canonical fragments and only the ``id``
    echo, the region value, and the shed list are rendered.  Falls back
    to the generic encoder for anything it cannot prove it renders
    canonically.
    """
    request_id = request.get("id")
    if request_id is None:
        id_token = "null"
    elif request_id is True:
        # bool is an int subclass and passes request validation, but
        # encodes as a JSON literal, not via repr().  JSON booleans are
        # always the singletons, so identity is exhaustive.
        id_token = "true"
    elif request_id is False:
        id_token = "false"
    elif type(request_id) is int:
        id_token = repr(request_id)
    elif type(request_id) is str:
        id_token = json.dumps(request_id)
    else:
        # Includes int/str *subclasses*, whose repr the fragment path
        # cannot prove canonical — the generic encoder owns them.
        return ok_response(
            request, admitted=admitted, region_value=region_value, shed=list(shed)
        )
    if request.get("op") != "admit" or type(region_value) is not float:
        return ok_response(
            request, admitted=admitted, region_value=region_value, shed=list(shed)
        )
    # json.dumps renders floats with float.__repr__; non-finite values
    # (f(U) saturates to inf at U == 1) canonically become null.
    region_token = repr(region_value) if math.isfinite(region_value) else "null"
    prefix = _ADMIT_TRUE if admitted else _ADMIT_FALSE
    if not shed:
        return prefix + id_token + _ADMIT_MID + region_token + _ADMIT_SHED_EMPTY
    shed_token = json.dumps(
        json_safe(list(shed)), sort_keys=True, separators=(",", ":")
    )
    return (
        prefix + id_token + _ADMIT_MID + region_token + _ADMIT_SHED + shed_token + "}"
    )


def admit_response_batch(
    items: Sequence[Tuple[Dict[str, Any], bool, float, Any]],
) -> List[str]:
    """Render a flushed batch of admission decisions in one pass.

    Byte-identical to calling :func:`admit_response` per
    ``(request, admitted, region_value, shed)`` item — the golden test
    pins it — with the fragment and builtin lookups hoisted out of the
    loop, so a size-``B`` flush costs one function call instead of
    ``B``.  Consecutive rejections at an unchanged region share the
    *same* float object (``admit_many`` reuses the frozen decision),
    so the rendered ``region_value`` + empty-shed tail is cached by
    object identity and the dominant overload traffic skips the float
    ``repr`` and two concatenations per response.
    """
    out: List[str] = []
    append = out.append
    isfinite = math.isfinite
    dumps = json.dumps
    admit_canon = _OP_CANON["admit"]
    prev_region: Any = None
    prev_tail = ""
    for request, admitted, region_value, shed in items:
        request_id = request.get("id")
        if request_id is None:
            id_token = "null"
        elif request_id is True:
            id_token = "true"
        elif request_id is False:
            id_token = "false"
        else:
            tid = type(request_id)
            if tid is int:
                id_token = repr(request_id)
            elif tid is str:
                id_token = dumps(request_id)
            else:
                append(
                    ok_response(
                        request,
                        admitted=admitted,
                        region_value=region_value,
                        shed=list(shed),
                    )
                )
                continue
        op = request.get("op")
        if (
            op is not admit_canon and op != "admit"
        ) or type(region_value) is not float:
            append(
                ok_response(
                    request,
                    admitted=admitted,
                    region_value=region_value,
                    shed=list(shed),
                )
            )
            continue
        prefix = _ADMIT_TRUE if admitted else _ADMIT_FALSE
        if not shed:
            if region_value is prev_region:
                append(prefix + id_token + prev_tail)
            else:
                region_token = (
                    repr(region_value) if isfinite(region_value) else "null"
                )
                prev_tail = _ADMIT_MID + region_token + _ADMIT_SHED_EMPTY
                prev_region = region_value
                append(prefix + id_token + prev_tail)
        else:
            region_token = (
                repr(region_value) if isfinite(region_value) else "null"
            )
            shed_token = dumps(
                json_safe(list(shed)), sort_keys=True, separators=(",", ":")
            )
            append(
                prefix
                + id_token
                + _ADMIT_MID
                + region_token
                + _ADMIT_SHED
                + shed_token
                + "}"
            )
    return out


def rewrite_response_id(line: str, request: Dict[str, Any]) -> str:
    """Re-encode a cached response with the retry request's ``id`` echo.

    Deduplicated retries receive the originally computed response, but
    the retry correlates replies by its *own* request id — only the
    ``id`` field is rewritten; the decision payload is untouched.
    """
    doc = json.loads(line)
    doc["id"] = request.get("id")
    return encode(doc)


def error_response(
    request: Optional[Dict[str, Any]], code: str, detail: str
) -> str:
    """A failure response; ``request`` may be ``None`` for parse errors."""
    request = request or {}
    return encode(
        {
            "id": request.get("id"),
            "op": request.get("op"),
            "ok": False,
            "error": code,
            "detail": detail,
        }
    )


# ----------------------------------------------------------------------
# Task encoding
# ----------------------------------------------------------------------


def task_to_wire(task: PipelineTask) -> Dict[str, Any]:
    """Encode a task as its wire document."""
    wire: Dict[str, Any] = {
        "task_id": task.task_id,
        "arrival": task.arrival_time,
        "deadline": task.deadline,
        "costs": list(task.computation_times),
    }
    if task.importance:
        wire["importance"] = task.importance
    if task.resources:
        wire["resources"] = resources_to_wire(task.resources)
    return wire


#: ``object.__setattr__``, hoisted: the frozen dataclass's own
#: ``__setattr__`` raises, so the fast constructor installs the whole
#: instance dict in one call instead of eight guarded field sets.
_set_dict = object.__setattr__


def _require_number(doc: Dict[str, Any], key: str) -> float:
    value = doc.get(key)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError("bad-task", f"task field {key!r} must be a number")
    return float(value)


def task_from_wire(doc: Any) -> PipelineTask:
    """Decode and validate a wire task document.

    The dominant wire shape — int ``task_id``, numeric
    ``arrival``/``deadline``, numeric ``costs``, no ``resources`` — is
    validated inline (the same invariants ``make_task`` +
    ``validate_task`` enforce, fused into one pass) and constructed
    directly.  Anything else, including every invalid document, re-runs
    the strict path so error messages never change.

    Raises:
        ProtocolError: On missing/ill-typed fields or model-invariant
            violations (non-positive deadline, negative costs, ...).
    """
    if type(doc) is dict and "resources" not in doc:
        get = doc.get
        task_id = get("task_id")
        arrival = get("arrival")
        deadline = get("deadline")
        costs = get("costs")
        importance = get("importance", 0)
        # type() is exact on purpose: it excludes bool (an int subclass
        # the strict path rejects) without a second isinstance check.
        if (
            type(task_id) is int
            and type(importance) is int
            and type(costs) is list
            and costs
            and type(arrival) in (int, float)
            and type(deadline) in (int, float)
        ):
            arrival = float(arrival)
            deadline = float(deadline)
            # ``x - x == 0.0`` is isfinite without the call: nan and
            # inf both yield nan, which compares false.
            if deadline > 0.0 and arrival - arrival == 0.0:  # repro: noqa[FLT001,FLT002] — exact complement of validate_task's `deadline <= 0` gate; boundary docs fall to the strict path
                # All-float costs (the wire-dominant shape: JSON reals
                # decode as float) validate without building a second
                # list — the source list becomes the tuple directly.
                valid = True
                for c in costs:
                    if (
                        type(c) is not float
                        or c < 0.0
                        or c - c != 0.0  # nan-only probe: finite non-negative gate
                    ):
                        valid = False
                        break
                if valid:
                    values = costs
                else:
                    values = []
                    append = values.append
                    valid = True
                    for c in costs:
                        tc = type(c)
                        if tc is float:
                            if c >= 0.0 and c - c == 0.0:  # nan-only probe
                                append(c)
                                continue
                        elif tc is int and c >= 0:
                            append(float(c))
                            continue
                        valid = False
                        break
                if valid:
                    # Frozen dataclass: routing around __init__'s
                    # per-field object.__setattr__ halves construction
                    # cost; the instance dict is indistinguishable.
                    task = PipelineTask.__new__(PipelineTask)
                    _set_dict(
                        task,
                        "__dict__",
                        {
                            "task_id": task_id,
                            "arrival_time": arrival,
                            "deadline": deadline,
                            "computation_times": tuple(values),
                            "importance": importance,
                            "blocking_times": None,
                            "resources": (),
                            "stream_id": None,
                        },
                    )
                    return task
    return _task_from_wire_strict(doc)


def _task_from_wire_strict(doc: Any) -> PipelineTask:
    """Reference decoder — the source of truth for ``bad-task`` bytes."""
    if not isinstance(doc, dict):
        raise ProtocolError("bad-task", "task must be a JSON object")
    task_id = doc.get("task_id")
    if not isinstance(task_id, int) or isinstance(task_id, bool):
        raise ProtocolError("bad-task", "task_id must be an integer")
    costs = doc.get("costs")
    if not isinstance(costs, list) or not costs:
        raise ProtocolError("bad-task", "costs must be a non-empty array")
    importance = doc.get("importance", 0)
    if not isinstance(importance, int) or isinstance(importance, bool):
        raise ProtocolError("bad-task", "importance must be an integer")
    try:
        cost_values: Tuple[float, ...] = tuple(float(c) for c in costs)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-task", "costs must be numbers") from exc
    raw_resources = doc.get("resources", [])
    try:
        resources = resources_from_wire(raw_resources)
    except (TypeError, ValueError) as exc:
        raise ProtocolError("bad-task", str(exc)) from exc
    try:
        return make_task(
            arrival_time=_require_number(doc, "arrival"),
            deadline=_require_number(doc, "deadline"),
            computation_times=cost_values,
            importance=importance,
            resources=resources,
            task_id=task_id,
        )
    except ValueError as exc:
        raise ProtocolError("bad-task", str(exc)) from exc


def frontier_from_wire(doc: Any) -> Dict[int, int]:
    """Decode a ``resync`` frontier document (task-id keys arrive as strings)."""
    if not isinstance(doc, dict):
        raise ProtocolError("bad-request", "frontier must be a JSON object")
    frontier: Dict[int, int] = {}
    for key, stage in doc.items():
        try:
            task_id = int(key)
        except (TypeError, ValueError) as exc:
            raise ProtocolError(
                "bad-request", f"frontier key {key!r} is not a task id"
            ) from exc
        if not isinstance(stage, int) or isinstance(stage, bool):
            raise ProtocolError("bad-request", "frontier stages must be integers")
        frontier[task_id] = stage
    return frontier
