"""Snapshot/restore of admission-controller state.

The controller's bookkeeping is small and fully explicit — per-stage
reserved baselines and capacities, plus one record per admitted task
(charged contributions, expiry, importance) and the trackers' live
per-stage state (amounts still counted, departed marks).  A snapshot
serializes exactly that as a JSON-safe document; restore rebuilds a
controller whose *future decisions* match the snapshotted one.

Floats survive the JSON round trip exactly (shortest-repr encoding is
lossless for IEEE doubles), and the snapshot carries each stage's
*exact accumulator state* (since schema v2) alongside the per-task
contributions, so a restored controller is *bitwise identical* to the
snapshotted one — same future decisions, same region values, down to
the last ulp, and independent of the order the records are replayed
in.  Schema v3 extends the records with each task's relative deadline
and shared-resource declarations plus the controller's ``locking``
flag, so the online PCP blocking state (``B_ij``, ``beta_j``, and the
transactional region budget) is rebuilt bitwise as well — and a v3+
restore refuses documents whose recorded beta vector disagrees with
the vector re-derived from its own records.  Schema v4 adds the
degradation state: each record's raw admission-time demand and
admission sequence number, plus the controller's admission counter
and charges-follow-capacity flag, so online capacity rescales and
sacrifice tie-breaks replay bitwise across crash recovery.  Crash
recovery (``repro.serve.recovery``) leans on this to prove a
recovered gateway equivalent to one that never crashed.  Legacy v3
(no degradation state), v2 (no resource model) and v1 documents
(rounded per-stage running sums) are still accepted: restore adopts
the recorded state, which the controller carries forward exactly.

Verification reuses the PR-2 machinery: :func:`verify_restored` runs
the :class:`~repro.core.audit.ControllerAuditor` internal-consistency
checks against the restored instance, and the gateway's ``restore``
operation refuses snapshots that do not audit clean.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..core.admission import (
    DemandModel,
    ExactDemand,
    MeanDemand,
    PipelineAdmissionController,
    ScaledDemand,
)
from ..core.audit import ControllerAuditor, InvariantViolation
from ..locking.model import resources_from_wire, resources_to_wire

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_FORMAT_V1",
    "SNAPSHOT_FORMAT_V2",
    "SNAPSHOT_FORMAT_V3",
    "SUPPORTED_SNAPSHOT_FORMATS",
    "controller_snapshot",
    "restore_controller",
    "verify_restored",
    "demand_model_to_wire",
    "demand_model_from_wire",
]

#: Version tag embedded in every snapshot document written today:
#: schema v4 adds the degradation state — per-record raw demand and
#: admission sequence number, plus the controller's admission counter
#: and charges-follow-capacity flag — so capacity rescales and
#: sacrifice tie-breaks replay bitwise across crash recovery.
SNAPSHOT_FORMAT = "repro.serve.controller-snapshot/4"

#: Previous schema: the locking flag plus per-record relative deadlines
#: and shared-resource declarations (online PCP blocking state), but no
#: raw demand or admission sequence.  Restored records keep their
#: charges pinned across capacity rescales; sequence numbers are
#: assigned in record order.
SNAPSHOT_FORMAT_V3 = "repro.serve.controller-snapshot/3"

#: Exact per-stage accumulator state, no resource model.  Still
#: accepted on restore (such controllers predate locking, so the
#: missing fields default cleanly).
SNAPSHOT_FORMAT_V2 = "repro.serve.controller-snapshot/2"

#: Legacy schema: rounded per-stage running sums only.  Still accepted
#: on restore so existing ``--state-dir`` deployments recover cleanly.
SNAPSHOT_FORMAT_V1 = "repro.serve.controller-snapshot/1"

#: Every format :func:`restore_controller` accepts, newest first.
SUPPORTED_SNAPSHOT_FORMATS = (
    SNAPSHOT_FORMAT,
    SNAPSHOT_FORMAT_V3,
    SNAPSHOT_FORMAT_V2,
    SNAPSHOT_FORMAT_V1,
)


def demand_model_to_wire(model: DemandModel) -> Dict[str, Any]:
    """Encode a known demand model as a JSON document.

    Raises:
        ValueError: For custom :class:`DemandModel` subclasses the wire
            format has no spelling for.
    """
    if isinstance(model, ScaledDemand):
        return {"kind": "scaled", "factor": model.factor}
    if isinstance(model, MeanDemand):
        return {"kind": "mean", "means": list(model.mean_computation_times)}
    if isinstance(model, ExactDemand):
        return {"kind": "exact"}
    raise ValueError(
        f"demand model {type(model).__name__} has no wire encoding; "
        "pass demand_model explicitly on restore"
    )


def demand_model_from_wire(doc: Optional[Dict[str, Any]]) -> DemandModel:
    """Decode a demand-model document (``None`` means exact demand).

    Raises:
        ValueError: On an unknown ``kind`` or missing parameters.
    """
    if doc is None:
        return ExactDemand()
    kind = doc.get("kind")
    if kind == "exact":
        return ExactDemand()
    if kind == "scaled":
        return ScaledDemand(float(doc["factor"]))
    if kind == "mean":
        return MeanDemand([float(c) for c in doc["means"]])
    raise ValueError(f"unknown demand model kind {kind!r}")


def controller_snapshot(
    controller: PipelineAdmissionController,
) -> Dict[str, Any]:
    """Serialize a controller's full state as a JSON-safe document.

    The admitted records are emitted sorted by task id so a given
    controller state always snapshots to byte-identical JSON.

    Raises:
        ValueError: If the controller uses a demand model the wire
            format cannot express, or an admitted task id is not an
            integer (the protocol's task-id type).
    """
    records = controller.iter_admitted()
    for task_id, *_ in records:
        if not isinstance(task_id, int):
            raise ValueError(
                f"task id {task_id!r} is not an integer; snapshots require "
                "protocol-typed ids"
            )
    admitted: List[Dict[str, Any]] = []
    tracked = [t.tracked_ids() for t in controller.trackers]
    for (
        task_id,
        contributions,
        expiry,
        importance,
        deadline,
        resources,
        demand,
        seq,
    ) in sorted(records, key=lambda record: record[0]):
        # None marks a stage that no longer tracks the task (released
        # by an idle reset) — distinct from a tracked 0.0 contribution
        # (a zero-cost stage), which must survive the round trip so
        # departed marks and idle-reset bookkeeping stay exact.
        live = [
            t.contribution_of(task_id) if task_id in ids else None
            for t, ids in zip(controller.trackers, tracked)
        ]
        departed = [
            j for j, t in enumerate(controller.trackers) if t.is_departed(task_id)
        ]
        admitted.append(
            {
                "task_id": task_id,
                "contributions": list(contributions),
                "expiry": expiry,
                "importance": importance,
                # Schema v3: relative deadline D_i and the canonical
                # resource declarations — all the blocking engine needs
                # to rebuild B_ij / beta_j bitwise on restore.
                "deadline": deadline,
                "resources": resources_to_wire(resources),
                # Schema v4: the raw demand charged at admission (None
                # for records whose lineage predates v4 — their charges
                # stay pinned across rescales) and the admission
                # sequence number (sacrifice tie-break order).
                "demand": None if demand is None else list(demand),
                "seq": seq,
                "live": live,
                "departed": departed,
            }
        )
    return {
        "format": SNAPSHOT_FORMAT,
        "num_stages": controller.num_stages,
        "alpha": controller.alpha,
        "betas": None if controller.betas is None else list(controller.betas),
        "locking": controller.locking,
        "reserved": [t.reserved for t in controller.trackers],
        "reset_on_idle": controller.reset_on_idle,
        "capacities": list(controller.stage_capacities()),
        # Schema v4 degradation state: the monotonic admission counter
        # and whether charges are a pure function of the capacities
        # (set by an authoritative rescale).
        "admission_seq": controller.admission_seq,
        "charges_follow_capacity": controller.charges_follow_capacity,
        "demand_model": demand_model_to_wire(controller.demand_model),
        "admitted": admitted,
        # Rounded per-stage running sums: diagnostics, and what a v1
        # reader would have recorded.  The decision-relevant state is
        # carried exactly by `accumulators` below.
        "sums": [t.audit_sums()[0] for t in controller.trackers],
        # Exact per-stage accumulator state (schema v2).  For a healthy
        # tracker this equals the exact sum of its live contributions —
        # order-independent by construction — but snapshots whose
        # lineage passed through a legacy v1 restore may carry a
        # rounded total; adopting the recorded state verbatim keeps
        # either lineage bitwise-stable across round trips.
        "accumulators": [t.exact_state() for t in controller.trackers],
    }


def restore_controller(
    state: Dict[str, Any],
    demand_model: Optional[DemandModel] = None,
) -> PipelineAdmissionController:
    """Rebuild a controller from a :func:`controller_snapshot` document.

    Accepts every schema from v4 down to legacy v1 (rounded running
    sums); see :data:`SUPPORTED_SNAPSHOT_FORMATS`.

    Args:
        state: The snapshot document.
        demand_model: Override for the demand model; defaults to the
            snapshot's own encoding.

    Raises:
        ValueError: On a missing/unknown format tag or inconsistent
            state vectors.
    """
    fmt = state.get("format")
    if fmt not in SUPPORTED_SNAPSHOT_FORMATS:
        raise ValueError(
            f"unsupported snapshot format {fmt!r}; "
            f"expected one of {SUPPORTED_SNAPSHOT_FORMATS!r}"
        )
    if demand_model is None:
        demand_model = demand_model_from_wire(state.get("demand_model"))
    # The locking flag first appears in schema v3; older documents can
    # only describe static-beta controllers.
    locking = bool(state.get("locking", False))
    controller = PipelineAdmissionController(
        num_stages=int(state["num_stages"]),
        alpha=float(state["alpha"]),
        betas=None if locking else state["betas"],
        reserved=state["reserved"],
        demand_model=demand_model,
        reset_on_idle=bool(state["reset_on_idle"]),
        locking=locking,
    )
    for stage, capacity in enumerate(state["capacities"]):
        if capacity != 1.0:
            controller.set_stage_capacity(stage, float(capacity))
    for record in state["admitted"]:
        # demand/seq are read uniformly via .get() for every format —
        # pre-v4 documents (and v4 documents downgraded by an old
        # writer) restore with pinned charges and record-order sequence
        # numbers, deterministically.
        demand = record.get("demand")
        controller.load_admitted(
            task_id=record["task_id"],
            contributions=record["contributions"],
            expiry=float(record["expiry"]),
            importance=int(record["importance"]),
            live=record["live"],
            departed_stages=record["departed"],
            deadline=float(record.get("deadline", 0.0)),
            resources=resources_from_wire(record.get("resources", [])),
            demand=None if demand is None else [float(c) for c in demand],
            seq=record.get("seq"),
        )
    controller.load_degradation_state(
        admission_seq=int(state.get("admission_seq", controller.admission_seq)),
        charges_follow_capacity=bool(state.get("charges_follow_capacity", False)),
    )
    if locking:
        # The online beta vector is derived state: replaying the
        # records through the blocking engine must land exactly on the
        # vector the snapshotted controller held.  A mismatch means the
        # document was corrupted (or hand-edited) — refuse it rather
        # than restore a controller whose budget silently moved.
        recorded = state.get("betas")
        rebuilt = None if controller.betas is None else list(controller.betas)
        if recorded != rebuilt:
            raise ValueError(
                f"snapshot beta vector {recorded!r} does not match the "
                f"blocking state rebuilt from its records {rebuilt!r}"
            )
    if fmt in (SNAPSHOT_FORMAT, SNAPSHOT_FORMAT_V3, SNAPSHOT_FORMAT_V2):
        accumulators = state["accumulators"]
        if len(accumulators) != controller.num_stages:
            raise ValueError(
                f"snapshot has {len(accumulators)} accumulator states for "
                f"{controller.num_stages} stages"
            )
        for tracker, acc_state in zip(controller.trackers, accumulators):
            tracker.load_exact(acc_state)
    else:
        # Legacy v1: only the rounded running sums were recorded; the
        # accumulator adopts them exactly, so the restored totals match
        # the snapshotted ones bit-for-bit (they can differ from the
        # exact contribution sum by the rounding the old format baked
        # in — far below the auditor's drift tolerance).
        sums = state.get("sums")
        if sums is not None:
            if len(sums) != controller.num_stages:
                raise ValueError(
                    f"snapshot has {len(sums)} stage sums for "
                    f"{controller.num_stages} stages"
                )
            for tracker, raw_sum in zip(controller.trackers, sums):
                tracker.load_sum(float(raw_sum))
    return controller


def verify_restored(
    controller: PipelineAdmissionController, now: float
) -> List[InvariantViolation]:
    """Audit a restored controller's internal consistency.

    Runs every ground-truth-free :class:`ControllerAuditor` check
    (sum drift, negative utilization, orphan and expired
    contributions).  A clean restore returns an empty list.
    """
    return ControllerAuditor(controller).audit(now)
