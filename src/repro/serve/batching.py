"""Admission batching: queue arrivals, decide them in one amortized pass.

Under heavy traffic the gateway amortizes the feasible-region
evaluation by queueing ``admit`` requests and deciding a whole batch
with :meth:`~repro.core.admission.PipelineAdmissionController.admit_many`.
Two triggers close a batch:

- *virtual-time window*: a batch opened at virtual time ``t0`` flushes
  when an arrival at ``t >= t0 + window`` shows up (the newcomer starts
  the next batch);
- *size cap*: a batch holding ``max_batch`` entries flushes
  immediately.

Any non-``admit`` operation on the pipeline acts as a *barrier* — the
pending batch is decided first, so every observer (``stats``,
``snapshot``, ``depart``, ...) sees the state sequential processing
would have produced.

Correctness: ``admit_many`` guarantees decision-for-decision
equivalence with sequential admission at the same virtual timestamps,
so batching changes *when* responses are emitted, never *what* they
say.  Batching is virtual-time based and therefore fully deterministic:
no wall-clock timer ever closes a batch.
"""

from __future__ import annotations

from typing import Any, Generic, List, Optional, Tuple, TypeVar

__all__ = ["AdmissionBatcher"]

T = TypeVar("T")

#: Shared "nothing flushed" result.  ``push`` returns it on the common
#: queued-without-flushing path so the per-call list allocation
#: disappears; callers must only iterate it (all do).
_NO_BATCHES: List[Any] = []


class AdmissionBatcher(Generic[T]):
    """Orders queued admission entries into flush-ready batches.

    The batcher is pure queue mechanics — it never decides admissions
    itself.  Entries are opaque to it (the serving layer queues
    ``(correlation token, task)`` pairs).

    Args:
        window: Virtual-time width of one batch (> 0), or ``None`` for
            no time-based trigger.
        max_batch: Maximum entries per batch (>= 1), or ``None`` for no
            size cap.

    Raises:
        ValueError: On a non-positive window or size cap.
    """

    def __init__(
        self, window: Optional[float] = None, max_batch: Optional[int] = None
    ) -> None:
        if window is not None and not window > 0:
            raise ValueError(f"batch window must be > 0, got {window}")
        if max_batch is not None and max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.window = window
        self.max_batch = max_batch
        self._pending: List[T] = []
        self._opened_at: float = 0.0

    @property
    def enabled(self) -> bool:
        """Whether batching is configured at all."""
        return self.window is not None or self.max_batch is not None

    @property
    def pending(self) -> int:
        """Entries queued and not yet flushed."""
        return len(self._pending)

    def push(self, entry: T, arrival: float) -> List[List[T]]:
        """Queue one entry; return any batches that are now ready.

        The window trigger fires *before* queueing (the newcomer opens
        the next batch); the size trigger fires after.  At most two
        batches can come back from a single push (a window flush of the
        old batch, then a size-1 flush of the new one).

        Args:
            entry: Opaque queue entry.
            arrival: The entry's virtual timestamp.
        """
        pending = self._pending
        ready: Optional[List[List[T]]] = None
        if pending:
            window = self.window
            if window is not None and arrival >= self._opened_at + window:
                ready = [pending]
                pending = []
                self._pending = pending
                self._opened_at = arrival
        else:
            self._opened_at = arrival
        pending.append(entry)
        max_batch = self.max_batch
        if max_batch is not None and len(pending) >= max_batch:
            self._pending = []
            if ready is None:
                return [pending]
            ready.append(pending)
            return ready
        # The shared empty list keeps the dominant queued-not-flushed
        # push allocation-free; callers only iterate the result.
        return ready if ready is not None else _NO_BATCHES

    def flush(self) -> List[T]:
        """Drain the pending batch (barrier operations and shutdown)."""
        return self._drain()

    def _drain(self) -> List[T]:
        drained = self._pending
        self._pending = []
        return drained

    def peek(self) -> Tuple[Any, ...]:
        """Read-only view of the pending entries (diagnostics)."""
        return tuple(self._pending)
