"""The admission gateway: protocol dispatch and the asyncio server.

Two layers:

:class:`AdmissionGateway`
    Synchronous, deterministic core.  One call per request line;
    returns zero or more ``(origin, response line)`` pairs (batched
    admissions defer their responses until the batch flushes, so a
    single request can release responses owed to *earlier* requests,
    potentially from other connections).  All protocol errors become
    error responses — the gateway never raises for request content.

:class:`GatewayServer`
    Asyncio TCP front end.  Reads newline-delimited requests per
    connection, feeds them to the shared core, routes responses to the
    connection that issued each request, applies write backpressure
    (``await drain()``), and performs a graceful drain on shutdown:
    pending admission batches are flushed and their responses delivered
    before sockets close.

The core is also driven directly by
:class:`repro.serve.client.InProcessTransport` — same lines, same
bytes, no event loop — which keeps tests and the load generator
deterministic and fast while exercising the full protocol stack.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Tuple

from .protocol import (
    MAX_REQUEST_CHARS,
    ProtocolError,
    admit_response,
    encode,
    error_response,
    frontier_from_wire,
    ok_response,
    parse_request,
    task_from_wire,
)
from .registry import Decided, PipelinePolicy, PipelineRegistry, ServedPipeline
from .snapshot import verify_restored

__all__ = [
    "AdmissionGateway",
    "GatewayLike",
    "GatewayServer",
    "serve_forever",
    "DEFAULT_DEDUP_WINDOW",
]

#: ``(origin, response line)`` — origin is the opaque connection token
#: the request arrived with (``None`` for in-process callers).
Routed = Tuple[Any, str]

#: Default size of the idempotency deduplication window: how many
#: decided ``rid``-tagged responses the gateway remembers for retries.
DEFAULT_DEDUP_WINDOW = 1024

#: Placeholder for a dedup entry whose original request id is unknown
#: (restored from serialized state); resolved lazily on first retry.
_UNKNOWN_ID = object()


class GatewayLike(Protocol):
    """The surface the server/transports need from a gateway core.

    Satisfied by :class:`AdmissionGateway` and by the durable
    write-ahead-journaled wrapper
    :class:`repro.serve.journal.DurableGateway`.

    The ``*_async`` variants are what the asyncio server calls: a core
    that performs real I/O (the durable journal) must keep it off the
    event loop there.  The sync variants remain the interface for
    in-process transports and recovery replay, where there is no loop
    to stall.
    """

    @property
    def draining(self) -> bool: ...

    @draining.setter
    def draining(self, value: bool) -> None: ...

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]: ...

    def drain(self) -> List[Routed]: ...

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]: ...

    async def drain_async(self) -> List[Routed]: ...


class AdmissionGateway:
    """Deterministic protocol core over a :class:`PipelineRegistry`.

    Args:
        registry: The pipeline registry to serve (fresh if ``None``).
        dedup_window: How many decided idempotent (``rid``-tagged)
            responses to keep for retry deduplication; oldest entries
            are evicted first.
    """

    def __init__(
        self,
        registry: Optional[PipelineRegistry] = None,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        if dedup_window < 1:
            raise ValueError(f"dedup_window must be >= 1, got {dedup_window}")
        self.registry = registry if registry is not None else PipelineRegistry()
        self.draining = False
        #: Optional provider of extra ``health`` payload fields — the
        #: durable wrapper reports its journal/snapshot sequence here so
        #: fleet heartbeats can watch replication progress (a regressing
        #: sequence means the worker lost durable state).
        self.health_extra: Optional[Callable[[], Dict[str, Any]]] = None
        self.op_counts: Dict[str, int] = {}
        self.errors = 0
        self.dedup_window = dedup_window
        self.dedup_hits = 0
        #: rids whose requests are in flight (queued in an admission
        #: batch) and not yet answered.
        self._rid_pending: set = set()
        #: rid -> ``[line, original_id, parsed_doc_or_None]``.  The
        #: original request id lets a retry carrying the same id be
        #: served the cached line verbatim in O(1); the parsed document
        #: is materialized lazily, once, for retries that need the id
        #: echo rewritten.
        self._rid_decided: "OrderedDict[str, List[Any]]" = OrderedDict()

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]:
        """Process one request line; return routed response lines.

        Never raises for request content — malformed or unserviceable
        requests produce an error response to ``origin``.  Handlers
        accumulate responses into a shared list, so responses already
        released by the request (batched admissions flushed by a
        barrier operation) are still delivered when the operation
        itself subsequently fails: the batch's decisions mutate
        controller state, and the clients that queued them must see
        them even though the failing request only gets an error.
        """
        request: Optional[Dict[str, Any]] = None
        routed: List[Routed] = []
        try:
            request = parse_request(line)
            # ``health`` is read-only and unjournaled, so its responses
            # must stay out of the (durable) idempotency window.
            rid = request.get("rid") if request.get("op") != "health" else None
            if isinstance(rid, str):
                entry = self._rid_decided.get(rid)
                if entry is not None:
                    # Idempotent retry of an already-decided request:
                    # serve the cached decision without re-running the
                    # operation (and without counting it as a new op).
                    # The window stays in decision order — a hit must
                    # NOT refresh the entry's position, because hits
                    # are served without journaling and an LRU bump
                    # here could never be reproduced by crash-recovery
                    # replay (eviction order, and with it future dedup
                    # decisions, would diverge from a never-crashed
                    # gateway).
                    self.dedup_hits += 1
                    routed.append((origin, self._replay(entry, request)))
                    return routed
                if rid in self._rid_pending:
                    # The original is still queued in an admission
                    # batch; there is no decision to replay yet.  Not
                    # an ``errors`` increment — the client did nothing
                    # wrong, it just retried too early.
                    routed.append(
                        (
                            origin,
                            error_response(
                                request,
                                "duplicate-request",
                                f"request rid {rid!r} is still queued in an "
                                "admission batch; retry after it is decided",
                            ),
                        )
                    )
                    return routed
                self._rid_pending.add(rid)
            op = request["op"]
            self.op_counts[op] = self.op_counts.get(op, 0) + 1
            if self.draining and op == "admit":
                raise ProtocolError("draining", "gateway is draining; no new admits")
            handler = getattr(self, f"_op_{op}")
            handler(request, origin, routed)
            if op != "admit":
                # Every non-admit handler appends the response answering
                # *this* request last; admit responses settle when their
                # batch flushes (see :meth:`_emit_decided`).
                self._settle(request, routed[-1][1])
        except ProtocolError as exc:
            self.errors += 1
            response = error_response(request, exc.code, exc.detail)
            if request is not None:
                self._settle(request, response)
            routed.append((origin, response))
        return routed

    def drain(self) -> List[Routed]:
        """Flush every pipeline's pending batch (shutdown path)."""
        routed: List[Routed] = []
        for pipeline in self.registry:
            routed.extend(self._emit_decided(pipeline.flush()))
        return routed

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]:
        """Async facade over :meth:`handle_line` — the core is pure
        compute, so there is nothing to offload."""
        return self.handle_line(line, origin=origin)

    async def drain_async(self) -> List[Routed]:
        """Async facade over :meth:`drain` (pure compute)."""
        return self.drain()

    # ------------------------------------------------------------------
    # Idempotency (rid deduplication)
    # ------------------------------------------------------------------

    def _settle(self, request: Dict[str, Any], line: str) -> None:
        """Record ``line`` as the decision for ``request``'s rid, if any."""
        rid = request.get("rid")
        if not isinstance(rid, str) or request.get("op") == "health":
            return
        self._rid_pending.discard(rid)
        self._rid_decided[rid] = [line, request.get("id"), None]
        self._rid_decided.move_to_end(rid)
        while len(self._rid_decided) > self.dedup_window:
            self._rid_decided.popitem(last=False)

    @staticmethod
    def _replay(entry: List[Any], request: Dict[str, Any]) -> str:
        """The cached decision line, with the ``id`` echo matching ``request``.

        The dominant retry (same request id as the original, or a
        restored entry retried once before) is served the stored line
        verbatim — no JSON parse, no re-encode.  Only a retry carrying
        a *different* id pays for rewriting, against a parsed document
        cached on the entry.  The type check keeps int/bool ids apart:
        ``1 == True`` but they encode differently.
        """
        line, original_id, doc = entry
        request_id = request.get("id")
        if type(request_id) is type(original_id) and request_id == original_id:
            return line
        if doc is None:
            doc = json.loads(line)
            entry[2] = doc
            if original_id is _UNKNOWN_ID:
                entry[1] = doc.get("id")
                if (
                    type(request_id) is type(entry[1])
                    and request_id == entry[1]
                ):
                    return line
        rewritten = dict(doc)
        rewritten["id"] = request_id
        return encode(rewritten)

    def dedup_status(self, rid: str) -> str:
        """One of ``"decided"``, ``"pending"``, ``"unknown"`` for a rid."""
        if rid in self._rid_decided:
            return "decided"
        if rid in self._rid_pending:
            return "pending"
        return "unknown"

    def dedup_state(self) -> Dict[str, Any]:
        """The dedup window as a JSON-serializable document.

        ``decided`` preserves eviction (insertion) order so a restored
        gateway evicts in the same order as the original.
        """
        return {
            "decided": [
                [rid, entry[0]] for rid, entry in self._rid_decided.items()
            ],
            "pending": sorted(self._rid_pending),
        }

    def load_dedup_state(self, state: Dict[str, Any]) -> None:
        """Replace the dedup window with a :meth:`dedup_state` document."""
        decided = state.get("decided", [])
        pending = state.get("pending", [])
        self._rid_decided = OrderedDict(
            (rid, [line, _UNKNOWN_ID, None]) for rid, line in decided
        )
        self._rid_pending = set(pending)
        while len(self._rid_decided) > self.dedup_window:
            self._rid_decided.popitem(last=False)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _pipeline(self, request: Dict[str, Any]) -> ServedPipeline:
        return self.registry.get(request["pipeline"])

    def _emit_decided(self, decided: List[Decided]) -> List[Routed]:
        """Render decided admissions as responses routed to their origins."""
        routed: List[Routed] = []
        for token, _task, decision in decided:
            origin, request = token
            line = admit_response(
                request,
                admitted=decision.admitted,
                region_value=decision.region_value,
                shed=sorted(decision.shed, key=repr),
            )
            self._settle(request, line)
            routed.append((origin, line))
        return routed

    def _barrier(self, request: Dict[str, Any], routed: List[Routed]) -> ServedPipeline:
        """Look up the target pipeline and flush its pending batch.

        Every non-admit pipeline operation is a batch barrier: queued
        admissions are decided (and their responses released) *before*
        the operation runs, so observers see sequential-equivalent
        state.  The flushed decisions go straight into ``routed`` so
        they survive even if the operation fails after the barrier
        (handlers validate their operands first, but some failures —
        e.g. a time regression — are only detectable afterwards).
        """
        pipeline = self._pipeline(request)
        routed.extend(self._emit_decided(pipeline.flush()))
        return pipeline

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_health(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        extra = self.health_extra() if self.health_extra is not None else {}
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipelines=sorted(self.registry.names()),
                    draining=self.draining,
                    errors=self.errors,
                    dedup_hits=self.dedup_hits,
                    **extra,
                ),
            )
        )

    def _op_register(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        policy = PipelinePolicy.from_dict(request.get("policy"))
        pipeline = self.registry.register(request["pipeline"], policy)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipeline=pipeline.name,
                    region_budget=pipeline.controller.budget,
                ),
            )
        )

    def _op_unregister(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._barrier(request, routed)
        self.registry.unregister(pipeline.name)
        routed.append((origin, ok_response(request, pipeline=pipeline.name)))

    def _op_admit(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._pipeline(request)
        task = task_from_wire(request.get("task"))
        token = (origin, request)
        routed.extend(self._emit_decided(pipeline.admit(token, task)))

    def _op_depart(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        task_id = _task_id_operand(request)
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.depart(task_id, stage)
        routed.append((origin, ok_response(request)))

    def _op_idle(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        released = pipeline.idle(stage)
        routed.append((origin, ok_response(request, released=released)))

    def _op_expire(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        now = _time_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.expire(now)
        routed.append(
            (
                origin,
                ok_response(
                    request, region_value=pipeline.controller.region_value()
                ),
            )
        )

    def _op_capacity(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        value = request.get("capacity")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError("bad-request", "capacity must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.set_capacity(stage, float(value))
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    capacities=list(pipeline.controller.stage_capacities()),
                ),
            )
        )

    def _op_set_capacity(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        value = request.get("capacity")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError("bad-request", "capacity must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        summary = pipeline.rescale_capacity(stage, float(value))
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    capacities=list(pipeline.controller.stage_capacities()),
                    sacrificed=summary["sacrificed"],
                    region_value=summary["region_value"],
                ),
            )
        )

    def _op_report(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        kind = request.get("kind")
        if not isinstance(kind, str):
            raise ProtocolError("bad-request", "'kind' must be a string")
        ratio = request.get("ratio")
        if ratio is not None and (
            not isinstance(ratio, (int, float)) or isinstance(ratio, bool)
        ):
            raise ProtocolError("bad-request", "'ratio' must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        result = pipeline.report_observation(stage, kind, ratio)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    confirmed=result["confirmed"],
                    capacity=result["capacity"],
                    sacrificed=result["sacrificed"],
                ),
            )
        )

    def _op_resync(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        now = _time_operand(request)
        frontier = frontier_from_wire(request.get("frontier", {}))
        pipeline = self._barrier(request, routed)
        report = pipeline.resync(now, frontier)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    report=report,
                    region_value=pipeline.controller.region_value(),
                ),
            )
        )

    def _op_snapshot(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._barrier(request, routed)
        try:
            snapshot = pipeline.snapshot()
        except ValueError as exc:
            raise ProtocolError("bad-snapshot", str(exc)) from exc
        routed.append((origin, ok_response(request, snapshot=snapshot)))

    def _op_restore(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        name = request["pipeline"]
        pipeline = ServedPipeline.from_snapshot(request.get("snapshot"), name=name)
        check_at = pipeline.clock if pipeline.clock is not None else 0.0
        violations = verify_restored(pipeline.controller, check_at)
        if violations:
            raise ProtocolError(
                "restore-audit-failed",
                "; ".join(f"{v.kind}: {v.detail}" for v in violations),
            )
        self.registry.adopt(pipeline)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipeline=name,
                    audited=True,
                    region_value=pipeline.controller.region_value(),
                ),
            )
        )

    def _op_stats(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        name = request.get("pipeline")
        if name is not None:
            if not isinstance(name, str):
                raise ProtocolError("bad-request", "pipeline must be a string")
            pipeline = self._barrier({"pipeline": name}, routed)
            stats = {name: pipeline.stats()}
        else:
            for pipeline in self.registry:
                routed.extend(self._emit_decided(pipeline.flush()))
            stats = {p.name: p.stats() for p in self.registry}
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    ops=dict(sorted(self.op_counts.items())),
                    stats=stats,
                ),
            )
        )

    def _op_drain(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        routed.extend(self.drain())
        routed.append((origin, ok_response(request, drained=True)))


def _time_operand(request: Dict[str, Any]) -> float:
    value = request.get("now")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'now' must be a number")
    return float(value)


def _stage_operand(request: Dict[str, Any]) -> int:
    value = request.get("stage")
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'stage' must be an integer")
    return value


def _task_id_operand(request: Dict[str, Any]) -> Hashable:
    value = request.get("task_id")
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'task_id' must be an integer")
    return value


class GatewayServer:
    """Asyncio TCP front end over a shared :class:`AdmissionGateway`.

    One server, many connections, one deterministic core: requests are
    dispatched in arrival order per connection; responses (including
    deferred batched-admission responses owed to other connections) are
    routed to the connection that issued the request.  Writes apply
    backpressure via ``drain()`` so a slow reader cannot balloon server
    memory.
    """

    def __init__(
        self,
        gateway: Optional[GatewayLike] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway: GatewayLike = (
            gateway if gateway is not None else AdmissionGateway()
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._next_origin = 0
        self._lock = asyncio.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    #: Stream-reader buffer limit.  Comfortably above the protocol's
    #: ``MAX_REQUEST_CHARS`` so every line the protocol would accept
    #: (or reject with a structured ``too-large`` error) fits; a line
    #: that overruns even this is answered with the same structured
    #: error and the connection is closed instead of wedged.
    READER_LIMIT = 4 * MAX_REQUEST_CHARS

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=self.READER_LIMIT
        )

    async def shutdown(self) -> None:
        """Graceful drain: flush batches, deliver responses, close."""
        self.gateway.draining = True
        async with self._lock:
            await self._deliver(await self.gateway.drain_async())
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.gateway.draining:
            # A draining gateway tells new connections *why* instead of
            # silently closing the socket under them.
            response = error_response(
                None, "draining", "gateway is draining; not accepting connections"
            )
            try:
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
            finally:
                writer.close()
            return
        origin = self._next_origin
        self._next_origin += 1
        self._writers[origin] = writer
        try:
            while True:
                try:
                    raw = await reader.readline()
                except ValueError:
                    # A line longer than READER_LIMIT (LimitOverrunError
                    # is a ValueError).  Tell the client why, then close
                    # — the stream position inside the oversized line is
                    # unrecoverable, but the *server* must not wedge and
                    # other connections are unaffected.
                    response = error_response(
                        None,
                        "too-large",
                        f"request line exceeds the {self.READER_LIMIT}-byte "
                        "stream limit; connection closed",
                    )
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not raw:
                    break
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                # The lock serializes dispatch across connections, so the
                # deterministic core only ever sees one request at a time.
                # The async variant keeps a durable core's journal I/O
                # off the event loop (executor offload inside).
                async with self._lock:
                    routed = await self.gateway.handle_line_async(line, origin=origin)
                    await self._deliver(routed)
        finally:
            # The origin key is written once above and removed only
            # here, both by this connection's own task — no other
            # coroutine touches this key, so the two mutations cannot
            # race across the awaits in between.
            self._writers.pop(origin, None)  # repro: noqa[ASY002] — per-connection key, single-owner
            writer.close()

    async def _deliver(self, routed: List[Routed]) -> None:
        """Write responses, coalesced into one write+drain per connection.

        A batch flush can release dozens of responses at once; paying a
        ``drain()`` round trip per response serializes the event loop on
        the slowest socket.  Responses are grouped by origin — order
        preserved within each connection, which is the only ordering the
        protocol promises — and each connection gets a single buffered
        write followed by a single backpressure ``drain()``.
        """
        if not routed:
            return
        by_origin: Dict[Any, List[str]] = {}
        for origin, response in routed:
            by_origin.setdefault(origin, []).append(response)
        for origin, responses in by_origin.items():
            writer = self._writers.get(origin)
            if writer is None or writer.is_closing():
                continue
            writer.write(("\n".join(responses) + "\n").encode("utf-8"))
            await writer.drain()


async def serve_forever(
    host: str, port: int, gateway: Optional[GatewayLike] = None
) -> None:
    """Run a gateway server until cancelled (``python -m repro.serve``)."""
    server = GatewayServer(gateway, host=host, port=port)
    await server.start()
    bound_host, bound_port = server.address
    print(f"repro.serve gateway listening on {bound_host}:{bound_port}", flush=True)
    try:
        assert server._server is not None
        await server._server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown()
