"""The admission gateway: protocol dispatch and the asyncio server.

Two layers:

:class:`AdmissionGateway`
    Synchronous, deterministic core.  One call per request line;
    returns zero or more ``(origin, response line)`` pairs (batched
    admissions defer their responses until the batch flushes, so a
    single request can release responses owed to *earlier* requests,
    potentially from other connections).  All protocol errors become
    error responses — the gateway never raises for request content.

:class:`GatewayServer`
    Asyncio TCP front end.  Reads newline-delimited requests per
    connection, feeds them to the shared core, routes responses to the
    connection that issued each request, applies write backpressure
    (``await drain()``), and performs a graceful drain on shutdown:
    pending admission batches are flushed and their responses delivered
    before sockets close.

The core is also driven directly by
:class:`repro.serve.client.InProcessTransport` — same lines, same
bytes, no event loop — which keeps tests and the load generator
deterministic and fast while exercising the full protocol stack.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, Callable, Dict, Hashable, List, Optional, Protocol, Sequence, Tuple

from .protocol import (
    MAX_REQUEST_CHARS,
    MAX_REQUEST_DEPTH,
    OPS,
    PIPELINE_OPS,
    NdjsonFramer,
    ProtocolError,
    _DIGIT_FOLD,
    _FRAME_WS,
    _OP_CANON,
    _folded_holds_huge_int,
    admit_response,
    admit_response_batch,
    encode,
    error_response,
    frontier_from_wire,
    ok_response,
    orjson,
    parse_request,
    task_from_wire,
)
from .registry import Decided, PipelinePolicy, PipelineRegistry, ServedPipeline
from .snapshot import verify_restored

__all__ = [
    "AdmissionGateway",
    "GatewayLike",
    "GatewayServer",
    "install_event_loop",
    "serve_forever",
    "DEFAULT_DEDUP_WINDOW",
]


def install_event_loop(preference: str = "auto") -> str:
    """Select the asyncio event-loop backend; returns the one in effect.

    ``"uvloop"`` installs `uvloop <https://github.com/MagicStack/uvloop>`_'s
    loop policy and fails loudly if it is not importable; ``"auto"``
    uses uvloop when available and silently falls back to the stdlib
    loop otherwise; ``"stdlib"`` never touches the policy.  The gateway
    core and the wire bytes are identical on every backend — only the
    event-loop implementation under :class:`GatewayServer` changes —
    so this is safe to call from any entry point before
    ``asyncio.run``.
    """
    if preference not in ("auto", "stdlib", "uvloop"):
        raise ValueError(
            f"event loop preference must be auto|stdlib|uvloop, got {preference!r}"
        )
    if preference == "stdlib":
        return "stdlib"
    try:
        import uvloop
    except ImportError:
        if preference == "uvloop":
            raise RuntimeError(
                "uvloop transport requested but uvloop is not installed"
            ) from None
        return "stdlib"
    uvloop.install()
    return "uvloop"

#: ``(origin, response line)`` — origin is the opaque connection token
#: the request arrived with (``None`` for in-process callers).
Routed = Tuple[Any, str]

#: Default size of the idempotency deduplication window: how many
#: decided ``rid``-tagged responses the gateway remembers for retries.
DEFAULT_DEDUP_WINDOW = 1024

#: Placeholder for a dedup entry whose original request id is unknown
#: (restored from serialized state); resolved lazily on first retry.
_UNKNOWN_ID = object()

#: Canonical op instances (``parse_request`` swaps every parsed op for
#: its canonical string), so the dispatcher's hot comparisons are
#: identity tests instead of string equality.
_OP_ADMIT = OPS[OPS.index("admit")]
_OP_HEALTH = OPS[OPS.index("health")]


class GatewayLike(Protocol):
    """The surface the server/transports need from a gateway core.

    Satisfied by :class:`AdmissionGateway` and by the durable
    write-ahead-journaled wrapper
    :class:`repro.serve.journal.DurableGateway`.

    The ``*_async`` variants are what the asyncio server calls: a core
    that performs real I/O (the durable journal) must keep it off the
    event loop there.  The sync variants remain the interface for
    in-process transports and recovery replay, where there is no loop
    to stall.
    """

    @property
    def draining(self) -> bool: ...

    @draining.setter
    def draining(self, value: bool) -> None: ...

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]: ...

    def handle_frames(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]: ...

    def drain(self) -> List[Routed]: ...

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]: ...

    async def handle_frames_async(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]: ...

    async def drain_async(self) -> List[Routed]: ...


class AdmissionGateway:
    """Deterministic protocol core over a :class:`PipelineRegistry`.

    Args:
        registry: The pipeline registry to serve (fresh if ``None``).
        dedup_window: How many decided idempotent (``rid``-tagged)
            responses to keep for retry deduplication; oldest entries
            are evicted first.
    """

    def __init__(
        self,
        registry: Optional[PipelineRegistry] = None,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        if dedup_window < 1:
            raise ValueError(f"dedup_window must be >= 1, got {dedup_window}")
        self.registry = registry if registry is not None else PipelineRegistry()
        self.draining = False
        #: Optional provider of extra ``health`` payload fields — the
        #: durable wrapper reports its journal/snapshot sequence here so
        #: fleet heartbeats can watch replication progress (a regressing
        #: sequence means the worker lost durable state).
        self.health_extra: Optional[Callable[[], Dict[str, Any]]] = None
        self.op_counts: Dict[str, int] = {}
        self.errors = 0
        self.dedup_window = dedup_window
        self.dedup_hits = 0
        #: rids whose requests are in flight (queued in an admission
        #: batch) and not yet answered.
        self._rid_pending: set = set()
        #: rid -> ``[line, original_id, parsed_doc_or_None]``.  The
        #: original request id lets a retry carrying the same id be
        #: served the cached line verbatim in O(1); the parsed document
        #: is materialized lazily, once, for retries that need the id
        #: echo rewritten.  A plain dict doubles as the FIFO eviction
        #: queue: CPython dicts iterate in insertion order, delete-then-
        #: reinsert moves a refreshed rid to the back, and ``del
        #: window[next(iter(window))]`` evicts the oldest — amortized
        #: O(1), cheaper per settle than ``OrderedDict``'s link juggling.
        self._rid_decided: Dict[str, List[Any]] = {}
        #: op -> bound handler.  ``parse_request`` guarantees the op is
        #: one of ``OPS``, so dispatch is one dict lookup instead of a
        #: per-request ``getattr`` string build.
        self._handlers: Dict[str, Callable[[Dict[str, Any], Any, List[Routed]], None]] = {
            op: getattr(self, f"_op_{op}") for op in OPS
        }

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]:
        """Process one request line; return routed response lines.

        Never raises for request content — malformed or unserviceable
        requests produce an error response to ``origin``.  Handlers
        accumulate responses into a shared list, so responses already
        released by the request (batched admissions flushed by a
        barrier operation) are still delivered when the operation
        itself subsequently fails: the batch's decisions mutate
        controller state, and the clients that queued them must see
        them even though the failing request only gets an error.
        """
        request: Optional[Dict[str, Any]] = None
        routed: List[Routed] = []
        try:
            request = parse_request(line)
            self._handle_request(request, origin, routed)
        except ProtocolError as exc:
            self.errors += 1
            response = error_response(request, exc.code, exc.detail)
            if request is not None:
                self._settle(request, response)
            routed.append((origin, response))
        return routed

    def _handle_request(
        self, request: Dict[str, Any], origin: Any, routed: List[Routed]
    ) -> None:
        """Dispatch one parsed, envelope-validated request."""
        op = request["op"]
        # ``health`` is read-only and unjournaled, so its responses
        # must stay out of the (durable) idempotency window.  The
        # envelope validation guarantees any present rid is a
        # string, so no type re-check is needed here.
        if op is not _OP_HEALTH:
            rid = request.get("rid")
            if rid is not None:
                entry = self._rid_decided.get(rid)
                if entry is not None:
                    # Idempotent retry of an already-decided
                    # request: serve the cached decision without
                    # re-running the operation (and without
                    # counting it as a new op).  The window stays
                    # in decision order — a hit must NOT refresh
                    # the entry's position, because hits are served
                    # without journaling and an LRU bump here could
                    # never be reproduced by crash-recovery replay
                    # (eviction order, and with it future dedup
                    # decisions, would diverge from a never-crashed
                    # gateway).
                    self.dedup_hits += 1
                    routed.append((origin, self._replay(entry, request)))
                    return
                if rid in self._rid_pending:
                    # The original is still queued in an admission
                    # batch; there is no decision to replay yet.
                    # Not an ``errors`` increment — the client did
                    # nothing wrong, it just retried too early.
                    routed.append(
                        (
                            origin,
                            error_response(
                                request,
                                "duplicate-request",
                                f"request rid {rid!r} is still queued in "
                                "an admission batch; retry after it is "
                                "decided",
                            ),
                        )
                    )
                    return
                self._rid_pending.add(rid)
        op_counts = self.op_counts
        op_counts[op] = op_counts.get(op, 0) + 1
        if op is _OP_ADMIT:
            # Admission fast lane: the dominant op, with the
            # handler-table indirection and the barrier machinery
            # of :meth:`_op_admit` bypassed.  Responses settle when
            # their batch flushes (see :meth:`_emit_decided_into`).
            if self.draining:
                raise ProtocolError(
                    "draining", "gateway is draining; no new admits"
                )
            pipeline = self.registry.get(request["pipeline"])
            task = task_from_wire(request.get("task"))
            decided = pipeline.admit((origin, request), task)
            if decided:
                self._emit_decided_into(decided, routed)
        else:
            self._handlers[op](request, origin, routed)
            # Every non-admit handler appends the response
            # answering *this* request last.
            self._settle(request, routed[-1][1])

    def handle_frames(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Process a chunk of framed request lines in one fused pass.

        Byte-equivalent — same responses, same order, same counters —
        to decoding each frame (``utf-8``, ``errors="replace"``),
        stripping it, skipping blanks, and calling :meth:`handle_line`
        (the differential test in ``tests/test_serve_fastpath`` pins
        this).  The fusion is where the per-line overhead of that loop
        goes away for the dominant traffic:

        - the accelerated decode runs straight off the frame *bytes*
          (no ``str`` round trip; the ``{`` first-byte probe also
          proves the parsed document is an object, and a byte length
          within ``MAX_REQUEST_CHARS`` bounds the char length),
        - the envelope validation and the admit dispatch are inlined
          with the per-chunk invariants (``draining``, dedup window,
          op counters, the target pipeline) hoisted out of the loop,
        - the ``admit`` op count is accumulated locally and written
          back at the first point it could be observed (a non-admit
          request is a batch barrier, so deferral is unobservable),
        - the pipeline lookup is cached across consecutive admits to
          the same pipeline name, invalidated by anything that can
          touch the registry (any non-fast-lane request).

        Anything the fast lane cannot prove equivalent — non-``admit``
        ops, lines needing the strict parser, decode fallbacks,
        draining mode — drops back to the shared per-line machinery.
        """
        routed: List[Routed] = []
        loads = orjson.loads if orjson is not None else None
        rid_decided_get = self._rid_decided.get
        rid_pending = self._rid_pending
        rid_pending_add = rid_pending.add
        registry_get = self.registry.get
        op_counts = self.op_counts
        op_canon_get = _OP_CANON.get
        admit_canon = _OP_ADMIT
        max_chars = MAX_REQUEST_CHARS
        max_depth = MAX_REQUEST_DEPTH
        holds_huge = _folded_holds_huge_int
        chunk_clean = False
        if loads is not None and frames:
            # One digit-fold + substring scan over the whole chunk
            # instead of one per frame.  Frames carry no ``\n``, so the
            # join separator breaks any digit run at a frame boundary:
            # a run that would screen positive inside some frame is the
            # same bytes here with the same (or a newline) predecessor,
            # and both classify as a run start — a clean chunk therefore
            # proves every frame clean.  A dirty chunk (rare: huge-int
            # traffic) falls back to the per-frame screen below, which
            # alone decides each frame's lane.
            chunk_clean = not holds_huge(
                b"\n".join(frames).translate(_DIGIT_FOLD)
            )
        draining = self.draining
        pipeline_name: Optional[str] = None
        pipeline: Optional[ServedPipeline] = None
        admits = 0
        for raw in frames:
            request: Any = None
            if loads is not None:
                stripped = raw.strip(_FRAME_WS)
                # A first byte of ``{`` (after ASCII-whitespace strip)
                # guarantees ``str.strip`` of the decoded line is the
                # same text, and that a successful parse is a dict.
                # Brace counts need no digit fold — ``{``/``[`` cannot
                # alias a folded byte.
                if (
                    stripped[:1] == b"{"
                    and len(stripped) <= max_chars
                    and stripped.count(b"{") + stripped.count(b"[") <= max_depth
                    and (
                        chunk_clean
                        or not holds_huge(stripped.translate(_DIGIT_FOLD))
                    )
                ):
                    try:
                        request = loads(stripped)
                    except Exception:
                        request = None
            if request is None:
                # Exactly the per-line transport path this replaces.
                line = raw.decode("utf-8", errors="replace").strip()
                if not line:
                    continue
                if admits:
                    op_counts[admit_canon] = (
                        op_counts.get(admit_canon, 0) + admits
                    )
                    admits = 0
                routed.extend(self.handle_line(line, origin=origin))
                draining = self.draining
                pipeline_name = None
                continue
            try:
                # Envelope validation, inlined (same expressions and
                # error bytes as ``parse_request``).  A failure here
                # corresponds to ``parse_request`` raising in
                # :meth:`handle_line` — where ``request`` is still
                # ``None`` — so the error must NOT settle into the
                # dedup window.
                try:
                    canon = op_canon_get(request.get("op"))
                except TypeError:
                    canon = None
                if canon is None:
                    op = request.get("op")
                    raise ProtocolError(
                        "unknown-op",
                        f"op must be one of {', '.join(OPS)}; got {op!r}",
                    )
                request["op"] = canon
                request_id = request.get("id")
                if request_id is not None and not isinstance(
                    request_id, (int, str)
                ):
                    raise ProtocolError(
                        "bad-request", "id must be an integer or string"
                    )
                rid = request.get("rid")
                if rid is not None and (
                    not isinstance(rid, str) or not rid or len(rid) > 200
                ):
                    raise ProtocolError(
                        "bad-request",
                        "rid must be a non-empty string of at most 200 chars",
                    )
                if canon in PIPELINE_OPS and not isinstance(
                    request.get("pipeline"), str
                ):
                    raise ProtocolError(
                        "bad-request",
                        f"op {canon!r} requires a string 'pipeline' operand",
                    )
            except ProtocolError as exc:
                self.errors += 1
                # ``None``, not ``request``: :meth:`handle_line` has no
                # parsed request at this stage, so its error response
                # carries no id/op echo.
                routed.append(
                    (origin, error_response(None, exc.code, exc.detail))
                )
                continue
            try:
                if canon is admit_canon and not draining:
                    # Fused admit lane: _handle_request with the chunk
                    # invariants hoisted.  Draining admits fall through
                    # to _handle_request so the dedup-before-draining
                    # order (a decided rid replays even while draining)
                    # is decided by exactly one code path.
                    if rid is not None:
                        entry = rid_decided_get(rid)
                        if entry is not None:
                            self.dedup_hits += 1
                            routed.append(
                                (origin, self._replay(entry, request))
                            )
                            continue
                        if rid in rid_pending:
                            routed.append(
                                (
                                    origin,
                                    error_response(
                                        request,
                                        "duplicate-request",
                                        f"request rid {rid!r} is still "
                                        "queued in an admission batch; "
                                        "retry after it is decided",
                                    ),
                                )
                            )
                            continue
                        rid_pending_add(rid)
                    admits += 1
                    name = request["pipeline"]
                    if name != pipeline_name:
                        pipeline = registry_get(name)
                        pipeline_name = name
                    task = task_from_wire(request.get("task"))
                    decided = pipeline.admit((origin, request), task)
                    if decided:
                        self._emit_decided_into(decided, routed)
                else:
                    if admits:
                        op_counts[admit_canon] = (
                            op_counts.get(admit_canon, 0) + admits
                        )
                        admits = 0
                    self._handle_request(request, origin, routed)
                    draining = self.draining
                    pipeline_name = None
            except ProtocolError as exc:
                self.errors += 1
                response = error_response(request, exc.code, exc.detail)
                self._settle(request, response)
                routed.append((origin, response))
                pipeline_name = None
        if admits:
            op_counts[admit_canon] = op_counts.get(admit_canon, 0) + admits
        return routed

    def drain(self) -> List[Routed]:
        """Flush every pipeline's pending batch (shutdown path)."""
        routed: List[Routed] = []
        for pipeline in self.registry:
            routed.extend(self._emit_decided(pipeline.flush()))
        return routed

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]:
        """Async facade over :meth:`handle_line` — the core is pure
        compute, so there is nothing to offload."""
        return self.handle_line(line, origin=origin)

    async def handle_frames_async(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Async facade over :meth:`handle_frames` (pure compute)."""
        return self.handle_frames(frames, origin=origin)

    async def drain_async(self) -> List[Routed]:
        """Async facade over :meth:`drain` (pure compute)."""
        return self.drain()

    # ------------------------------------------------------------------
    # Idempotency (rid deduplication)
    # ------------------------------------------------------------------

    def _settle(self, request: Dict[str, Any], line: str) -> None:
        """Record ``line`` as the decision for ``request``'s rid, if any."""
        rid = request.get("rid")
        if not isinstance(rid, str) or request.get("op") == "health":
            return
        self._rid_pending.discard(rid)
        decided = self._rid_decided
        if rid in decided:
            # Re-deciding an existing rid must move it to the back of
            # the eviction order; deleting first makes the reinsert
            # land there.
            del decided[rid]
        decided[rid] = [line, request.get("id"), None]
        while len(decided) > self.dedup_window:
            del decided[next(iter(decided))]

    @staticmethod
    def _replay(entry: List[Any], request: Dict[str, Any]) -> str:
        """The cached decision line, with the ``id`` echo matching ``request``.

        The dominant retry (same request id as the original, or a
        restored entry retried once before) is served the stored line
        verbatim — no JSON parse, no re-encode.  Only a retry carrying
        a *different* id pays for rewriting, against a parsed document
        cached on the entry.  The type check keeps int/bool ids apart:
        ``1 == True`` but they encode differently.
        """
        line, original_id, doc = entry
        request_id = request.get("id")
        if type(request_id) is type(original_id) and request_id == original_id:
            return line
        if doc is None:
            doc = json.loads(line)
            entry[2] = doc
            if original_id is _UNKNOWN_ID:
                entry[1] = doc.get("id")
                if (
                    type(request_id) is type(entry[1])
                    and request_id == entry[1]
                ):
                    return line
        rewritten = dict(doc)
        rewritten["id"] = request_id
        return encode(rewritten)

    def dedup_status(self, rid: str) -> str:
        """One of ``"decided"``, ``"pending"``, ``"unknown"`` for a rid."""
        if rid in self._rid_decided:
            return "decided"
        if rid in self._rid_pending:
            return "pending"
        return "unknown"

    def dedup_state(self) -> Dict[str, Any]:
        """The dedup window as a JSON-serializable document.

        ``decided`` preserves eviction (insertion) order so a restored
        gateway evicts in the same order as the original.
        """
        return {
            "decided": [
                [rid, entry[0]] for rid, entry in self._rid_decided.items()
            ],
            "pending": sorted(self._rid_pending),
        }

    def load_dedup_state(self, state: Dict[str, Any]) -> None:
        """Replace the dedup window with a :meth:`dedup_state` document."""
        decided = state.get("decided", [])
        pending = state.get("pending", [])
        self._rid_decided = {
            rid: [line, _UNKNOWN_ID, None] for rid, line in decided
        }
        self._rid_pending = set(pending)
        while len(self._rid_decided) > self.dedup_window:
            del self._rid_decided[next(iter(self._rid_decided))]

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _pipeline(self, request: Dict[str, Any]) -> ServedPipeline:
        return self.registry.get(request["pipeline"])

    def _emit_decided(self, decided: List[Decided]) -> List[Routed]:
        """Render decided admissions as responses routed to their origins."""
        routed: List[Routed] = []
        if decided:
            self._emit_decided_into(decided, routed)
        return routed

    def _emit_decided_into(
        self, decided: List[Decided], routed: List[Routed]
    ) -> None:
        """Append decided admissions to ``routed``, settling their rids.

        The whole flush is encoded in one :func:`admit_response_batch`
        call (byte-identical to per-decision :func:`admit_response` —
        pinned by test); an empty shed tuple skips the ``sorted`` call,
        which encodes identically because both are falsy.  The settle
        loop is :meth:`_settle` unrolled with the window bookkeeping
        hoisted — admit tokens always carry a parsed non-``health``
        request, so the per-response op/type re-checks drop out.
        """
        items = []
        iappend = items.append
        for token, _task, decision in decided:
            shed = decision.shed
            iappend(
                (
                    token[1],
                    decision.admitted,
                    decision.region_value,
                    sorted(shed, key=repr) if shed else shed,
                )
            )
        lines = admit_response_batch(items)
        pending_discard = self._rid_pending.discard
        window = self._rid_decided
        limit = self.dedup_window
        rappend = routed.append
        for (token, _task, _decision), line in zip(decided, lines):
            request = token[1]
            rid = request.get("rid")
            if rid is not None:
                pending_discard(rid)
                if rid in window:
                    # Re-deciding an existing rid must move it to the
                    # back of the eviction order; deleting first makes
                    # the reinsert land there.
                    del window[rid]
                window[rid] = [line, request.get("id"), None]
                while len(window) > limit:
                    del window[next(iter(window))]
            rappend((token[0], line))

    def _barrier(self, request: Dict[str, Any], routed: List[Routed]) -> ServedPipeline:
        """Look up the target pipeline and flush its pending batch.

        Every non-admit pipeline operation is a batch barrier: queued
        admissions are decided (and their responses released) *before*
        the operation runs, so observers see sequential-equivalent
        state.  The flushed decisions go straight into ``routed`` so
        they survive even if the operation fails after the barrier
        (handlers validate their operands first, but some failures —
        e.g. a time regression — are only detectable afterwards).
        """
        pipeline = self._pipeline(request)
        routed.extend(self._emit_decided(pipeline.flush()))
        return pipeline

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _op_health(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        extra = self.health_extra() if self.health_extra is not None else {}
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipelines=sorted(self.registry.names()),
                    draining=self.draining,
                    errors=self.errors,
                    dedup_hits=self.dedup_hits,
                    **extra,
                ),
            )
        )

    def _op_register(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        policy = PipelinePolicy.from_dict(request.get("policy"))
        pipeline = self.registry.register(request["pipeline"], policy)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipeline=pipeline.name,
                    region_budget=pipeline.controller.budget,
                ),
            )
        )

    def _op_unregister(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._barrier(request, routed)
        self.registry.unregister(pipeline.name)
        routed.append((origin, ok_response(request, pipeline=pipeline.name)))

    def _op_admit(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._pipeline(request)
        task = task_from_wire(request.get("task"))
        token = (origin, request)
        routed.extend(self._emit_decided(pipeline.admit(token, task)))

    def _op_depart(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        task_id = _task_id_operand(request)
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.depart(task_id, stage)
        routed.append((origin, ok_response(request)))

    def _op_idle(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        released = pipeline.idle(stage)
        routed.append((origin, ok_response(request, released=released)))

    def _op_expire(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        now = _time_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.expire(now)
        routed.append(
            (
                origin,
                ok_response(
                    request, region_value=pipeline.controller.region_value()
                ),
            )
        )

    def _op_capacity(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        value = request.get("capacity")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError("bad-request", "capacity must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        pipeline.set_capacity(stage, float(value))
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    capacities=list(pipeline.controller.stage_capacities()),
                ),
            )
        )

    def _op_set_capacity(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        value = request.get("capacity")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ProtocolError("bad-request", "capacity must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        summary = pipeline.rescale_capacity(stage, float(value))
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    capacities=list(pipeline.controller.stage_capacities()),
                    sacrificed=summary["sacrificed"],
                    region_value=summary["region_value"],
                ),
            )
        )

    def _op_report(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        kind = request.get("kind")
        if not isinstance(kind, str):
            raise ProtocolError("bad-request", "'kind' must be a string")
        ratio = request.get("ratio")
        if ratio is not None and (
            not isinstance(ratio, (int, float)) or isinstance(ratio, bool)
        ):
            raise ProtocolError("bad-request", "'ratio' must be a number")
        stage = _stage_operand(request)
        pipeline = self._barrier(request, routed)
        result = pipeline.report_observation(stage, kind, ratio)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    confirmed=result["confirmed"],
                    capacity=result["capacity"],
                    sacrificed=result["sacrificed"],
                ),
            )
        )

    def _op_resync(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        now = _time_operand(request)
        frontier = frontier_from_wire(request.get("frontier", {}))
        pipeline = self._barrier(request, routed)
        report = pipeline.resync(now, frontier)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    report=report,
                    region_value=pipeline.controller.region_value(),
                ),
            )
        )

    def _op_snapshot(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        pipeline = self._barrier(request, routed)
        try:
            snapshot = pipeline.snapshot()
        except ValueError as exc:
            raise ProtocolError("bad-snapshot", str(exc)) from exc
        routed.append((origin, ok_response(request, snapshot=snapshot)))

    def _op_restore(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        name = request["pipeline"]
        pipeline = ServedPipeline.from_snapshot(request.get("snapshot"), name=name)
        check_at = pipeline.clock if pipeline.clock is not None else 0.0
        violations = verify_restored(pipeline.controller, check_at)
        if violations:
            raise ProtocolError(
                "restore-audit-failed",
                "; ".join(f"{v.kind}: {v.detail}" for v in violations),
            )
        self.registry.adopt(pipeline)
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    pipeline=name,
                    audited=True,
                    region_value=pipeline.controller.region_value(),
                ),
            )
        )

    def _op_stats(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        name = request.get("pipeline")
        if name is not None:
            if not isinstance(name, str):
                raise ProtocolError("bad-request", "pipeline must be a string")
            pipeline = self._barrier({"pipeline": name}, routed)
            stats = {name: pipeline.stats()}
        else:
            for pipeline in self.registry:
                routed.extend(self._emit_decided(pipeline.flush()))
            stats = {p.name: p.stats() for p in self.registry}
        routed.append(
            (
                origin,
                ok_response(
                    request,
                    ops=dict(sorted(self.op_counts.items())),
                    stats=stats,
                ),
            )
        )

    def _op_drain(self, request: Dict[str, Any], origin: Any, routed: List[Routed]) -> None:
        routed.extend(self.drain())
        routed.append((origin, ok_response(request, drained=True)))


def _time_operand(request: Dict[str, Any]) -> float:
    value = request.get("now")
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'now' must be a number")
    return float(value)


def _stage_operand(request: Dict[str, Any]) -> int:
    value = request.get("stage")
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'stage' must be an integer")
    return value


def _task_id_operand(request: Dict[str, Any]) -> Hashable:
    value = request.get("task_id")
    if not isinstance(value, int) or isinstance(value, bool):
        raise ProtocolError("bad-request", "'task_id' must be an integer")
    return value


class GatewayServer:
    """Asyncio TCP front end over a shared :class:`AdmissionGateway`.

    One server, many connections, one deterministic core: requests are
    dispatched in arrival order per connection; responses (including
    deferred batched-admission responses owed to other connections) are
    routed to the connection that issued the request.  Writes apply
    backpressure via ``drain()`` so a slow reader cannot balloon server
    memory.
    """

    def __init__(
        self,
        gateway: Optional[GatewayLike] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.gateway: GatewayLike = (
            gateway if gateway is not None else AdmissionGateway()
        )
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._writers: Dict[int, asyncio.StreamWriter] = {}
        self._next_origin = 0
        self._lock = asyncio.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)``; valid after :meth:`start`."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    #: Stream-reader buffer limit.  Comfortably above the protocol's
    #: ``MAX_REQUEST_CHARS`` so every line the protocol would accept
    #: (or reject with a structured ``too-large`` error) fits; a line
    #: that overruns even this is answered with the same structured
    #: error and the connection is closed instead of wedged.
    READER_LIMIT = 4 * MAX_REQUEST_CHARS

    #: Bytes requested per socket read.  Frames are re-assembled by
    #: :class:`repro.serve.protocol.NdjsonFramer`, so the chunk size
    #: only trades syscall count against latency, not correctness.
    READ_CHUNK = 64 * 1024

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port, limit=self.READER_LIMIT
        )

    async def shutdown(self) -> None:
        """Graceful drain: flush batches, deliver responses, close."""
        self.gateway.draining = True
        async with self._lock:
            await self._deliver(await self.gateway.drain_async())
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for writer in list(self._writers.values()):
            writer.close()
        self._writers.clear()

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self.gateway.draining:
            # A draining gateway tells new connections *why* instead of
            # silently closing the socket under them.
            response = error_response(
                None, "draining", "gateway is draining; not accepting connections"
            )
            try:
                writer.write(response.encode("utf-8") + b"\n")
                await writer.drain()
            finally:
                writer.close()
            return
        origin = self._next_origin
        self._next_origin += 1
        self._writers[origin] = writer
        framer = NdjsonFramer(self.READER_LIMIT)
        try:
            while True:
                data = await reader.read(self.READ_CHUNK)
                if data:
                    frames = framer.feed(data)
                else:
                    # EOF: an unterminated trailing line is still a
                    # request, exactly as ``readline()`` returned it.
                    tail = framer.finish()
                    frames = [tail] if tail is not None else []
                if frames:
                    # The lock serializes dispatch across connections, so the
                    # deterministic core only ever sees one request at a time.
                    # The async variant keeps a durable core's journal I/O
                    # off the event loop (executor offload inside).  One
                    # fused call per read chunk: same responses in the same
                    # order as the per-line loop this replaces, delivered
                    # with one write+drain instead of one per line.
                    async with self._lock:
                        routed = await self.gateway.handle_frames_async(
                            frames, origin=origin
                        )
                        await self._deliver(routed)
                if framer.overflowed:
                    # A line longer than READER_LIMIT.  Complete frames
                    # ahead of it were answered above; tell the client
                    # why, then close — the stream position inside the
                    # oversized line is unrecoverable, but the *server*
                    # must not wedge and other connections are
                    # unaffected.
                    response = error_response(
                        None,
                        "too-large",
                        f"request line exceeds the {self.READER_LIMIT}-byte "
                        "stream limit; connection closed",
                    )
                    writer.write(response.encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not data:
                    break
        finally:
            # The origin key is written once above and removed only
            # here, both by this connection's own task — no other
            # coroutine touches this key, so the two mutations cannot
            # race across the awaits in between.
            self._writers.pop(origin, None)  # repro: noqa[ASY002] — per-connection key, single-owner
            writer.close()

    async def _deliver(self, routed: List[Routed]) -> None:
        """Write responses, coalesced into one write+drain per connection.

        A batch flush can release dozens of responses at once; paying a
        ``drain()`` round trip per response serializes the event loop on
        the slowest socket.  Responses are grouped by origin — order
        preserved within each connection, which is the only ordering the
        protocol promises — and each connection gets a single buffered
        write followed by a single backpressure ``drain()``.
        """
        if not routed:
            return
        by_origin: Dict[Any, List[str]] = {}
        for origin, response in routed:
            by_origin.setdefault(origin, []).append(response)
        for origin, responses in by_origin.items():
            writer = self._writers.get(origin)
            if writer is None or writer.is_closing():
                continue
            writer.write(("\n".join(responses) + "\n").encode("utf-8"))
            await writer.drain()


async def serve_forever(
    host: str, port: int, gateway: Optional[GatewayLike] = None
) -> None:
    """Run a gateway server until cancelled (``python -m repro.serve``)."""
    server = GatewayServer(gateway, host=host, port=port)
    await server.start()
    bound_host, bound_port = server.address
    print(f"repro.serve gateway listening on {bound_host}:{bound_port}", flush=True)
    try:
        assert server._server is not None
        await server._server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.shutdown()
