"""Multi-pipeline registry: named controllers with per-pipeline policy.

A gateway hosts many independent resource pipelines (the paper's model
is one pipeline; a serving deployment fronts several — e.g. one per
service tier).  Each :class:`ServedPipeline` owns one
:class:`~repro.core.admission.PipelineAdmissionController` configured
by a :class:`PipelinePolicy` (stage count, alpha/beta, reservations,
demand model, shedding, batching), a virtual clock, and serving
counters.  The :class:`PipelineRegistry` maps names to served
pipelines.

Time is *virtual* throughout: every timed operation carries its own
timestamp, the registry only enforces per-pipeline monotonicity.  The
gateway therefore replays identically regardless of wall-clock
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterator, List, Optional, Tuple

from ..core.admission import AdmissionDecision, PipelineAdmissionController
from ..core.task import PipelineTask
from .batching import AdmissionBatcher
from .degradation import DegradationManager, hysteresis_from_wire
from .protocol import ProtocolError
from .snapshot import (
    controller_snapshot,
    demand_model_from_wire,
    demand_model_to_wire,
    restore_controller,
)

__all__ = [
    "PIPELINE_SNAPSHOT_FORMAT",
    "PipelinePolicy",
    "ServedPipeline",
    "PipelineRegistry",
    "Decided",
]

#: Version tag of the pipeline-level snapshot document (wraps the
#: controller-level document from :mod:`repro.serve.snapshot`).
PIPELINE_SNAPSHOT_FORMAT = "repro.serve.pipeline-snapshot/1"

#: One decided admission: ``(correlation token, task, decision)``.
Decided = Tuple[Any, PipelineTask, AdmissionDecision]

#: Shared "no decisions ready" result for the dominant queued-not-
#: flushed admit path; callers only iterate it.
_NO_DECIDED: List[Decided] = []


@dataclass(frozen=True)
class PipelinePolicy:
    """Per-pipeline admission configuration.

    Attributes:
        num_stages: Pipeline length ``N``.
        alpha: Urgency-inversion parameter in ``(0, 1]`` (Eq. 15).
        betas: Per-stage blocking terms, or ``None``.
        reserved: Per-stage reserved synthetic utilization (Section 5),
            or ``None``.
        demand: Demand-model wire document (see
            :func:`repro.serve.snapshot.demand_model_from_wire`), or
            ``None`` for exact demand.
        reset_on_idle: Whether the Section-4 idle-reset rule is active.
        locking: Derive the per-stage blocking terms online from the
            admitted tasks' shared-resource declarations (PCP bounds)
            instead of taking a static ``betas`` vector.  Mutually
            exclusive with ``betas``.
        shedding: Decide arrivals with
            :meth:`~repro.core.admission.PipelineAdmissionController.request_with_shedding`
            (importance-ordered load shedding) instead of plain
            admission.
        batch_window: Virtual-time admission batching window, or
            ``None``.
        max_batch: Admission batch size cap, or ``None``.
        degradation: Capacity-hysteresis configuration for the online
            degradation manager (see
            :func:`repro.serve.degradation.hysteresis_from_wire`), or
            ``None`` for the defaults.
    """

    num_stages: int
    alpha: float = 1.0
    betas: Optional[Tuple[float, ...]] = None
    reserved: Optional[Tuple[float, ...]] = None
    demand: Optional[Dict[str, Any]] = None
    reset_on_idle: bool = True
    locking: bool = False
    shedding: bool = False
    batch_window: Optional[float] = None
    max_batch: Optional[int] = None
    degradation: Optional[Dict[str, Any]] = None

    def __post_init__(self) -> None:
        if self.locking and self.betas is not None:
            raise ValueError(
                "locking pipelines derive betas online from resource "
                "declarations; a static betas vector conflicts"
            )
        if self.betas is not None:
            object.__setattr__(self, "betas", tuple(float(b) for b in self.betas))
        if self.reserved is not None:
            object.__setattr__(
                self, "reserved", tuple(float(r) for r in self.reserved)
            )
        # Validate batching parameters eagerly (same rules as the batcher).
        AdmissionBatcher(self.batch_window, self.max_batch)
        if self.demand is not None:
            demand_model_from_wire(self.demand)
        hysteresis_from_wire(self.degradation)

    @property
    def batched(self) -> bool:
        """Whether admissions on this pipeline are queued into batches."""
        return self.batch_window is not None or self.max_batch is not None

    def build_controller(self) -> PipelineAdmissionController:
        """Instantiate the controller this policy describes."""
        return PipelineAdmissionController(
            num_stages=self.num_stages,
            alpha=self.alpha,
            betas=self.betas,
            reserved=self.reserved,
            demand_model=demand_model_from_wire(self.demand),
            reset_on_idle=self.reset_on_idle,
            locking=self.locking,
        )

    def to_dict(self) -> Dict[str, Any]:
        """Wire document for this policy (canonical field set)."""
        return {
            "num_stages": self.num_stages,
            "alpha": self.alpha,
            "betas": None if self.betas is None else list(self.betas),
            "reserved": None if self.reserved is None else list(self.reserved),
            "demand": self.demand,
            "reset_on_idle": self.reset_on_idle,
            "locking": self.locking,
            "shedding": self.shedding,
            "batch_window": self.batch_window,
            "max_batch": self.max_batch,
            "degradation": self.degradation,
        }

    @classmethod
    def from_dict(cls, doc: Any) -> "PipelinePolicy":
        """Parse a policy wire document.

        Raises:
            ProtocolError: On a non-object document, unknown fields, or
                invalid parameter values.
        """
        if not isinstance(doc, dict):
            raise ProtocolError("bad-policy", "policy must be a JSON object")
        known = {
            "num_stages",
            "alpha",
            "betas",
            "reserved",
            "demand",
            "reset_on_idle",
            "locking",
            "shedding",
            "batch_window",
            "max_batch",
            "degradation",
        }
        unknown = set(doc) - known
        if unknown:
            raise ProtocolError(
                "bad-policy", f"unknown policy fields: {sorted(unknown)}"
            )
        if "num_stages" not in doc:
            raise ProtocolError("bad-policy", "policy requires num_stages")
        try:
            policy = cls(
                num_stages=int(doc["num_stages"]),
                alpha=float(doc.get("alpha", 1.0)),
                betas=doc.get("betas"),
                reserved=doc.get("reserved"),
                demand=doc.get("demand"),
                reset_on_idle=bool(doc.get("reset_on_idle", True)),
                locking=bool(doc.get("locking", False)),
                shedding=bool(doc.get("shedding", False)),
                batch_window=(
                    None
                    if doc.get("batch_window") is None
                    else float(doc["batch_window"])
                ),
                max_batch=(
                    None if doc.get("max_batch") is None else int(doc["max_batch"])
                ),
                degradation=doc.get("degradation"),
            )
            # Surface controller-level parameter errors (alpha range,
            # infeasible reservations, vector lengths) at registration
            # time rather than on the first admit.
            policy.build_controller()
        except (TypeError, ValueError) as exc:
            raise ProtocolError("bad-policy", str(exc)) from exc
        return policy


@dataclass
class ServeCounters:
    """Serving counters of one pipeline (all virtual-time driven)."""

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    batches: int = 0
    largest_batch: int = 0
    resyncs: int = 0
    rescales: int = 0
    sacrificed: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "offered": self.offered,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "batches": self.batches,
            "largest_batch": self.largest_batch,
            "resyncs": self.resyncs,
            "rescales": self.rescales,
            "sacrificed": self.sacrificed,
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ServeCounters":
        return cls(**{key: int(value) for key, value in doc.items()})


@dataclass
class ServedPipeline:
    """One named pipeline: controller + batcher + virtual clock + counters."""

    name: str
    policy: PipelinePolicy
    controller: PipelineAdmissionController = field(init=False)
    counters: ServeCounters = field(default_factory=ServeCounters)

    def __post_init__(self) -> None:
        self.controller = self.policy.build_controller()
        self.degradation = DegradationManager(
            self.policy.num_stages, hysteresis_from_wire(self.policy.degradation)
        )
        self._batcher: AdmissionBatcher[Tuple[Any, PipelineTask]] = AdmissionBatcher(
            self.policy.batch_window, self.policy.max_batch
        )
        self._clock: Optional[float] = None

    # ------------------------------------------------------------------
    # Virtual clock
    # ------------------------------------------------------------------

    @property
    def clock(self) -> Optional[float]:
        """Latest virtual timestamp observed (``None`` before any)."""
        return self._clock

    def observe_time(self, now: float) -> float:
        """Advance the virtual clock; reject time running backwards.

        Raises:
            ProtocolError: If ``now`` precedes an already-observed
                timestamp (the protocol requires per-pipeline
                non-decreasing time).
        """
        if self._clock is not None and now < self._clock:
            raise ProtocolError(
                "time-regression",
                f"timestamp {now} precedes pipeline clock {self._clock}",
            )
        self._clock = now
        return now

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------

    def admit(self, token: Any, task: PipelineTask) -> List[Decided]:
        """Offer one arrival; return every decision that is now ready.

        On an unbatched pipeline the arrival is decided immediately and
        the single decision comes back.  On a batched pipeline the
        arrival is queued; the returned list holds the decisions of any
        batch the arrival caused to flush (possibly none — the caller
        must defer its response until a later flush).

        Args:
            token: Opaque correlation token echoed in the decision
                triple (the gateway passes the pending request).
            task: The arriving task.
        """
        # observe_time inlined — this is the per-arrival hot path and
        # the property/raise plumbing costs as much as the real work.
        now = task.arrival_time
        clock = self._clock
        if clock is not None and now < clock:
            raise ProtocolError(
                "time-regression",
                f"timestamp {now} precedes pipeline clock {clock}",
            )
        self._clock = now
        entry = (token, task)
        if not self._batcher.enabled:
            return self._decide_batch([entry])
        batches = self._batcher.push(entry, now)
        if not batches:
            # Offered counting happens batchwise in _decide_batch; the
            # queued-not-flushed path stays allocation-free (callers
            # only read the result, and every counter observer is a
            # batch barrier, so the deferral is unobservable).
            return _NO_DECIDED
        if len(batches) == 1:
            return self._decide_batch(batches[0])
        decided: List[Decided] = []
        for batch in batches:
            decided.extend(self._decide_batch(batch))
        return decided

    def flush(self) -> List[Decided]:
        """Decide the pending admission batch, if any (barrier/drain)."""
        batch = self._batcher.flush()
        if not batch:
            return []
        return self._decide_batch(batch)

    @property
    def pending(self) -> int:
        """Admissions queued behind the batching window."""
        return self._batcher.pending

    def pending_tasks(self) -> List[PipelineTask]:
        """The tasks queued behind the batching window, in queue order.

        Read-only introspection for recovery fingerprinting: a crash
        with a non-empty batch queue must recover the queue too, and
        equivalence checks need to see it without flushing it.
        """
        return [task for _, task in self._batcher.peek()]

    def _decide_batch(self, batch: List[Tuple[Any, PipelineTask]]) -> List[Decided]:
        tasks = [task for _, task in batch]
        if self.policy.shedding:
            # Shedding inspects (and mutates) the admitted set per
            # arrival, so it stays on the sequential path; batching then
            # only defers responses, with identical decisions.
            decisions = [
                self.controller.request_with_shedding(task, task.arrival_time)
                for task in tasks
            ]
        else:
            # presorted: the pipeline clock already enforced
            # non-decreasing arrivals, and validated tasks have
            # ``deadline > 0`` so every decision precedes its expiry —
            # both admit_many preconditions hold by construction.
            decisions = self.controller.admit_many(tasks, presorted=True)
        counters = self.counters
        counters.batches += 1
        size = len(batch)
        counters.offered += size
        if size > counters.largest_batch:
            counters.largest_batch = size
        decided: List[Decided] = []
        append = decided.append
        admitted = 0
        shed = 0
        for (token, task), decision in zip(batch, decisions):
            if decision.admitted:
                admitted += 1
            shed += len(decision.shed)
            append((token, task, decision))
        counters.admitted += admitted
        counters.rejected += size - admitted
        counters.shed += shed
        return decided

    # ------------------------------------------------------------------
    # Bookkeeping operations (callers must flush first — the gateway
    # treats every non-admit op as a batch barrier)
    # ------------------------------------------------------------------

    def depart(self, task_id: Hashable, stage: int) -> None:
        """Record a subtask departure at ``stage``."""
        self._check_stage(stage)
        self.controller.notify_subtask_departure(task_id, stage)

    def idle(self, stage: int) -> float:
        """Apply the idle-reset rule at ``stage``; return released amount."""
        self._check_stage(stage)
        return self.controller.notify_stage_idle(stage)

    def expire(self, now: float) -> None:
        """Lapse contributions whose deadlines passed by ``now``."""
        self.observe_time(now)
        self.controller.expire(now)

    def set_capacity(self, stage: int, capacity: float) -> None:
        """Declare (possibly degraded) capacity at ``stage``.

        Prospective only: future admissions are charged at the new
        capacity, already-admitted charges stay put.  The online
        degradation path is :meth:`rescale_capacity`.
        """
        self._check_stage(stage)
        try:
            self.controller.set_stage_capacity(stage, capacity)
        except ValueError as exc:
            raise ProtocolError("bad-capacity", str(exc)) from exc

    def rescale_capacity(self, stage: int, capacity: float) -> Dict[str, Any]:
        """Authoritative capacity change: rescale admitted set, repair region.

        The ``set_capacity`` wire op: re-charges every admitted task at
        the new capacity vector and sacrifices tasks (brownout order)
        until the feasible region holds again.

        Raises:
            ProtocolError: On an invalid stage or capacity value.
        """
        self._check_stage(stage)
        try:
            summary = self.degradation.apply_capacity(
                self.controller, stage, capacity
            )
        except ValueError as exc:
            raise ProtocolError("bad-capacity", str(exc)) from exc
        self.counters.rescales += 1
        self.counters.sacrificed += len(summary["sacrificed"])
        return summary

    def report_observation(
        self, stage: int, kind: str, ratio: Optional[float] = None
    ) -> Dict[str, Any]:
        """Ingest one fault report (``report`` wire op).

        Feeds the hysteresis estimator; on a *confirmed* capacity
        change, performs the same rescale-and-repair as
        :meth:`rescale_capacity`.

        Raises:
            ProtocolError: On an invalid stage, kind, or ratio.
        """
        self._check_stage(stage)
        try:
            result = self.degradation.observe(self.controller, stage, kind, ratio)
        except ValueError as exc:
            raise ProtocolError("bad-report", str(exc)) from exc
        if result["confirmed"]:
            self.counters.rescales += 1
            self.counters.sacrificed += len(result["sacrificed"])
        return result

    def resync(self, now: float, frontier: Dict[Hashable, int]) -> Dict[str, Any]:
        """Rebuild controller state from a ground-truth frontier."""
        self.observe_time(now)
        report = self.controller.resync(now, frontier)
        self.counters.resyncs += 1
        return {
            "restored": report.restored,
            "departures_marked": report.departures_marked,
            "dropped_orphans": report.dropped_orphans,
            "dropped_expired": report.dropped_expired,
        }

    def _check_stage(self, stage: int) -> None:
        if not isinstance(stage, int) or isinstance(stage, bool):
            raise ProtocolError("bad-stage", "stage must be an integer")
        if not 0 <= stage < self.policy.num_stages:
            raise ProtocolError(
                "bad-stage",
                f"stage {stage} outside [0, {self.policy.num_stages})",
            )

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Serving counters plus live region state."""
        return {
            "policy": self.policy.to_dict(),
            "clock": self._clock,
            "pending": self.pending,
            "counters": self.counters.to_dict(),
            "region_value": self.controller.region_value(),
            "region_budget": self.controller.budget,
            "utilizations": list(self.controller.utilizations()),
            "capacities": list(self.controller.stage_capacities()),
            "admitted_live": len(self.controller.admitted_snapshot()),
            "degradation": self.degradation.stats_doc(),
        }

    def snapshot(self) -> Dict[str, Any]:
        """Full pipeline state (policy + clock + counters + controller).

        Callers must flush pending admissions first; a snapshot with a
        non-empty batch queue would silently drop the queued arrivals.
        """
        if self.pending:
            raise ProtocolError(
                "pending-batch", "flush pending admissions before snapshotting"
            )
        return {
            "format": PIPELINE_SNAPSHOT_FORMAT,
            "name": self.name,
            "policy": self.policy.to_dict(),
            "clock": self._clock,
            "counters": self.counters.to_dict(),
            "controller": controller_snapshot(self.controller),
            "degradation": self.degradation.state_doc(),
        }

    @classmethod
    def from_snapshot(cls, doc: Dict[str, Any], name: Optional[str] = None) -> "ServedPipeline":
        """Rebuild a served pipeline from a :meth:`snapshot` document.

        Raises:
            ProtocolError: On a malformed document, a format mismatch,
                or a policy document that disagrees with the embedded
                controller document (a pipeline whose policy claims
                different parameters than its controller would accept
                operations the controller cannot serve).
        """
        if not isinstance(doc, dict) or doc.get("format") != PIPELINE_SNAPSHOT_FORMAT:
            raise ProtocolError(
                "bad-snapshot",
                f"expected a {PIPELINE_SNAPSHOT_FORMAT!r} document",
            )
        try:
            policy = PipelinePolicy.from_dict(doc["policy"])
            _check_controller_matches_policy(policy, doc["controller"])
            pipeline = cls(name=name or str(doc["name"]), policy=policy)
            pipeline.controller = restore_controller(doc["controller"])
            pipeline.counters = ServeCounters.from_dict(doc["counters"])
            if doc.get("clock") is not None:
                pipeline._clock = float(doc["clock"])
            # Pipeline snapshots predating the degradation manager carry
            # no "degradation" key; the fresh default (all-nominal
            # estimate, empty ledger) is exactly their state.
            if doc.get("degradation") is not None:
                pipeline.degradation.load_state(doc["degradation"])
            return pipeline
        except ProtocolError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad-snapshot", str(exc)) from exc


def _check_controller_matches_policy(
    policy: PipelinePolicy, controller_doc: Any
) -> None:
    """Reject a pipeline snapshot whose two documents disagree.

    The policy document drives gateway-side validation (``_check_stage``
    bounds, the ``stats`` report) while the controller document rebuilds
    the decision state.  If they diverge — e.g. a policy claiming more
    stages than the controller has trackers — a policy-valid operation
    would raise ``IndexError`` inside the controller, escaping the
    gateway's "never raises for request content" contract.

    Raises:
        ProtocolError: On any parameter mismatch.
    """
    if not isinstance(controller_doc, dict):
        raise ProtocolError("bad-snapshot", "controller must be a JSON object")
    expected: Dict[str, Any] = {
        "num_stages": policy.num_stages,
        "alpha": policy.alpha,
        "locking": policy.locking,
        "reserved": (
            [0.0] * policy.num_stages
            if policy.reserved is None
            else list(policy.reserved)
        ),
        "reset_on_idle": policy.reset_on_idle,
        # Both sides are normalized through the wire codec so the
        # policy's ``None`` (= exact demand) compares equal to the
        # controller's explicit ``{"kind": "exact"}``.
        "demand_model": demand_model_to_wire(demand_model_from_wire(policy.demand)),
    }
    if not policy.locking:
        # On a locking pipeline the controller document carries the
        # *online* beta vector (derived from its admitted records), not
        # a policy constant — restore_controller cross-checks it against
        # the records instead.
        expected["betas"] = None if policy.betas is None else list(policy.betas)
    for key, want in expected.items():
        got = controller_doc.get(key)
        if key == "demand_model":
            got = demand_model_to_wire(demand_model_from_wire(got))
        elif key == "locking":
            # Pre-v3 controller documents predate the flag.
            got = bool(controller_doc.get("locking", False))
        if got != want:
            raise ProtocolError(
                "bad-snapshot",
                f"controller {key} {got!r} disagrees with policy value {want!r}",
            )


class PipelineRegistry:
    """Name → :class:`ServedPipeline` map with registration lifecycle."""

    def __init__(self) -> None:
        self._pipelines: Dict[str, ServedPipeline] = {}

    def register(self, name: str, policy: PipelinePolicy) -> ServedPipeline:
        """Create and host a pipeline under ``name``.

        Raises:
            ProtocolError: If the name is empty or already registered.
        """
        if not name:
            raise ProtocolError("bad-request", "pipeline name must be non-empty")
        if name in self._pipelines:
            raise ProtocolError(
                "duplicate-pipeline", f"pipeline {name!r} already registered"
            )
        pipeline = ServedPipeline(name=name, policy=policy)
        self._pipelines[name] = pipeline
        return pipeline

    def adopt(self, pipeline: ServedPipeline) -> ServedPipeline:
        """Host an already-built pipeline (snapshot restore path)."""
        if pipeline.name in self._pipelines:
            raise ProtocolError(
                "duplicate-pipeline",
                f"pipeline {pipeline.name!r} already registered",
            )
        self._pipelines[pipeline.name] = pipeline
        return pipeline

    def unregister(self, name: str) -> ServedPipeline:
        """Remove and return the pipeline under ``name``."""
        pipeline = self.get(name)
        del self._pipelines[name]
        return pipeline

    def get(self, name: str) -> ServedPipeline:
        """Look up a pipeline.

        Raises:
            ProtocolError: If no pipeline is registered under ``name``.
        """
        pipeline = self._pipelines.get(name)
        if pipeline is None:
            raise ProtocolError("unknown-pipeline", f"no pipeline named {name!r}")
        return pipeline

    def names(self) -> List[str]:
        """Registered pipeline names, in registration order."""
        return list(self._pipelines)

    def __len__(self) -> int:
        return len(self._pipelines)

    def __iter__(self) -> Iterator[ServedPipeline]:
        return iter(self._pipelines.values())
