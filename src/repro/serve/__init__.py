"""repro.serve: the online admission-control gateway.

Turns the library's feasible-region admission test into a runnable
service: a :class:`~repro.serve.registry.PipelineRegistry` hosts many
named controllers, an :class:`~repro.serve.gateway.AdmissionGateway`
speaks a newline-delimited JSON protocol (over TCP via
:class:`~repro.serve.gateway.GatewayServer` or in-process via
:class:`~repro.serve.client.InProcessTransport`), admissions can be
batched with a sequential-equivalence guarantee, controller state
snapshots and restores with auditing, and ``python -m
repro.serve.loadgen`` replays seeded traces into byte-stable reports.

Durability (PR 4): a :class:`~repro.serve.journal.Journal` write-ahead
log plus periodic snapshot compaction make the gateway
crash-recoverable — :func:`~repro.serve.recovery.recover` rebuilds a
*bitwise identical* gateway from disk, the
:class:`~repro.serve.client.RetryingGatewayClient` pairs
client-generated request ids with the gateway's dedup window for
exactly-once admission across timeouts and reconnects, and
``python -m repro.serve.loadgen --chaos-crash`` proves zero
lost/duplicated admissions across repeated kill/recover cycles.

Fleet (PR 7): a :class:`~repro.serve.fleet.FleetSupervisor` partitions
the registry across N workers via a versioned
:class:`~repro.serve.router.ShardMap`, monitors them with seq-stamped
heartbeats, and restarts dead workers through the recovery path;
``python -m repro.serve.loadgen --chaos-fleet`` proves zero
lost/duplicated admissions and bitwise-identical recovered registries
under whole-worker SIGKILL plus torn-frame / partial-write /
slow-client / connection-storm network faults.

Degradation (PR 9): a per-pipeline
:class:`~repro.serve.degradation.DegradationManager` turns stage
capacity faults into journaled ``rescale_stage_capacity`` transactions
— authoritative ``set_capacity`` wire ops apply immediately, noisy
``report`` observations pass through hysteresis first — and repairs an
infeasible region by sacrificing admitted tasks in brownout order;
``python -m repro.serve.loadgen --chaos-degradation`` proves zero
lost/duplicated admissions, zero post-repair region violations, and
bitwise recovery under capacity waves crossed with crash kinds.

See DESIGN.md §9 for the mapping from protocol operations to the
paper's Section-4 bookkeeping rules, §10 for the durability contract,
§13 for the fleet failover invariants, and §15 for the degradation
model.
"""

from .batching import AdmissionBatcher
from .client import (
    GatewayClient,
    GatewayControllerProxy,
    GatewayError,
    GatewayTimeout,
    InProcessTransport,
    RetryBudget,
    RetryingGatewayClient,
    RetryPolicy,
    TcpTransport,
)
from .degchaos import degradation_chaos_gate_failures, run_degradation_chaos
from .degradation import (
    OBSERVATION_KINDS,
    SACRIFICE_LEDGER_LIMIT,
    DegradationManager,
    hysteresis_from_wire,
    hysteresis_to_wire,
)
from .fleet import (
    FleetError,
    FleetSupervisor,
    HeartbeatMonitor,
    InProcessWorker,
    ProcessFleet,
    ProcessWorker,
    WorkerUnavailable,
)
from .fleetchaos import fleet_chaos_gate_failures, run_fleet_chaos
from .gateway import AdmissionGateway, GatewayLike, GatewayServer
from .journal import (
    GATEWAY_SNAPSHOT_FORMAT,
    DurableGateway,
    Journal,
    JournalError,
    fsync_dir,
    scan_journal,
)
from .protocol import OPS, ProtocolError
from .router import ShardGateway, ShardMap, ShardRouter
from .recovery import (
    RecoveryError,
    RecoveryReport,
    recover,
    registry_fingerprint,
    run_crash_chaos,
)
from .registry import PipelinePolicy, PipelineRegistry, ServedPipeline
from .snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_FORMAT_V1,
    SUPPORTED_SNAPSHOT_FORMATS,
    controller_snapshot,
    restore_controller,
    verify_restored,
)

__all__ = [
    "AdmissionBatcher",
    "AdmissionGateway",
    "DegradationManager",
    "DurableGateway",
    "FleetError",
    "FleetSupervisor",
    "GATEWAY_SNAPSHOT_FORMAT",
    "GatewayClient",
    "GatewayControllerProxy",
    "GatewayError",
    "GatewayLike",
    "GatewayServer",
    "GatewayTimeout",
    "HeartbeatMonitor",
    "InProcessTransport",
    "InProcessWorker",
    "Journal",
    "JournalError",
    "OBSERVATION_KINDS",
    "OPS",
    "PipelinePolicy",
    "PipelineRegistry",
    "ProcessFleet",
    "ProcessWorker",
    "ProtocolError",
    "RecoveryError",
    "RecoveryReport",
    "RetryBudget",
    "RetryPolicy",
    "RetryingGatewayClient",
    "SACRIFICE_LEDGER_LIMIT",
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_FORMAT_V1",
    "SUPPORTED_SNAPSHOT_FORMATS",
    "ServedPipeline",
    "ShardGateway",
    "ShardMap",
    "ShardRouter",
    "TcpTransport",
    "WorkerUnavailable",
    "controller_snapshot",
    "degradation_chaos_gate_failures",
    "fleet_chaos_gate_failures",
    "fsync_dir",
    "hysteresis_from_wire",
    "hysteresis_to_wire",
    "recover",
    "registry_fingerprint",
    "restore_controller",
    "run_crash_chaos",
    "run_degradation_chaos",
    "run_fleet_chaos",
    "scan_journal",
    "verify_restored",
]
