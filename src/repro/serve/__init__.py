"""repro.serve: the online admission-control gateway.

Turns the library's feasible-region admission test into a runnable
service: a :class:`~repro.serve.registry.PipelineRegistry` hosts many
named controllers, an :class:`~repro.serve.gateway.AdmissionGateway`
speaks a newline-delimited JSON protocol (over TCP via
:class:`~repro.serve.gateway.GatewayServer` or in-process via
:class:`~repro.serve.client.InProcessTransport`), admissions can be
batched with a sequential-equivalence guarantee, controller state
snapshots and restores with auditing, and ``python -m
repro.serve.loadgen`` replays seeded traces into byte-stable reports.

See DESIGN.md §9 for the mapping from protocol operations to the
paper's Section-4 bookkeeping rules.
"""

from .batching import AdmissionBatcher
from .client import (
    GatewayClient,
    GatewayControllerProxy,
    GatewayError,
    InProcessTransport,
    TcpTransport,
)
from .gateway import AdmissionGateway, GatewayServer
from .protocol import OPS, ProtocolError
from .registry import PipelinePolicy, PipelineRegistry, ServedPipeline
from .snapshot import (
    SNAPSHOT_FORMAT,
    controller_snapshot,
    restore_controller,
    verify_restored,
)

__all__ = [
    "AdmissionBatcher",
    "AdmissionGateway",
    "GatewayClient",
    "GatewayControllerProxy",
    "GatewayError",
    "GatewayServer",
    "InProcessTransport",
    "OPS",
    "PipelinePolicy",
    "PipelineRegistry",
    "ProtocolError",
    "SNAPSHOT_FORMAT",
    "ServedPipeline",
    "TcpTransport",
    "controller_snapshot",
    "restore_controller",
    "verify_restored",
]
