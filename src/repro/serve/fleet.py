"""Supervised shard fleet: health-checked workers with WAL failover.

The single durable gateway of PR 4 scales out here: a
:class:`FleetSupervisor` partitions the pipeline registry across N
workers via a versioned :class:`~repro.serve.router.ShardMap`, probes
each worker with **seq-stamped heartbeats** over the ordinary
``health`` op, and restarts dead workers through the PR-4 recovery
path (snapshot + journal-suffix replay), so a worker that dies between
two heartbeats comes back with bitwise-identical registry state.

Heartbeats are seq-stamped twice over:

* each probe carries a fleet-wide monotonic ``probe`` id, so a stale
  (reordered, replayed) health answer is detectable and ignored; and
* each answer carries the worker's durable ``journal_seq`` /
  ``snapshot_seq`` (via the ``health_extra`` hook on the gateway core),
  so a worker that restarts *without* its durable state — journal
  sequence regressed — is flagged as lost state rather than trusted.

Per-worker failure detection is a small state machine driven by the
:class:`HeartbeatMonitor`::

    healthy --miss--> degraded --miss--> unavailable
       ^                                     |
       '----- probe ok <--- recovering <-- restart

Two worker flavours share the supervisor logic:

:class:`InProcessWorker`
    A :class:`~repro.serve.journal.DurableGateway` wrapped in a
    :class:`~repro.serve.router.ShardGateway`, living in this process
    with its own state directory.  "SIGKILL" is modelled exactly as
    the PR-4 crash kinds do — close without drain, optionally tearing
    or pre-acking the in-flight journal record — which keeps the fleet
    chaos gate (:mod:`repro.serve.fleetchaos`) fully deterministic.

:class:`ProcessWorker` / :class:`ProcessFleet`
    Real ``python -m repro.serve`` subprocesses, each bound to its own
    TCP port and state directory, killed with a real ``SIGKILL`` and
    respawned (recovery happens in the child on restart).  Exercised
    by the ``slow_serve`` test tier and ``python -m repro.serve.fleet``.

See DESIGN.md §13 for how supervisor states map onto the exact
``U_j(t)`` bookkeeping invariants.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from .gateway import DEFAULT_DEDUP_WINDOW
from .journal import DEFAULT_SNAPSHOT_EVERY, DurableGateway
from .protocol import encode
from .recovery import RecoveryReport, recover, registry_fingerprint
from .router import ShardGateway, ShardMap

__all__ = [
    "WORKER_HEALTHY",
    "WORKER_DEGRADED",
    "WORKER_UNAVAILABLE",
    "WORKER_RECOVERING",
    "DEFAULT_MISS_THRESHOLD",
    "FleetError",
    "WorkerUnavailable",
    "HeartbeatMonitor",
    "InProcessWorker",
    "FleetSupervisor",
    "ProcessWorker",
    "ProcessFleet",
]

WORKER_HEALTHY = "healthy"
WORKER_DEGRADED = "degraded"
WORKER_UNAVAILABLE = "unavailable"
WORKER_RECOVERING = "recovering"

#: Consecutive missed heartbeats before a worker is declared
#: unavailable (one miss only degrades it — a single late answer must
#: not trigger a restart).
DEFAULT_MISS_THRESHOLD = 2


class FleetError(RuntimeError):
    """A fleet-level operational failure."""


class WorkerUnavailable(FleetError):
    """A request was routed to a worker that is currently down."""


class HeartbeatMonitor:
    """Seq-stamped failure detection for one fleet.

    Tracks, per worker: the liveness state machine, consecutive missed
    probes, the highest probe id answered, and the last observed
    durable ``journal_seq``/``snapshot_seq``.  A successful probe whose
    ``journal_seq`` is *lower* than previously observed is counted in
    ``seq_regressions`` — the worker answered, but without the durable
    state it had before, which the fleet invariants treat as data loss,
    not recovery.
    """

    def __init__(self, workers: int, miss_threshold: int = DEFAULT_MISS_THRESHOLD) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if miss_threshold < 1:
            raise ValueError(f"miss_threshold must be >= 1, got {miss_threshold}")
        self.miss_threshold = miss_threshold
        self.states = [WORKER_HEALTHY] * workers
        self.misses = [0] * workers
        self.last_probe = [0] * workers
        self.journal_seqs = [0] * workers
        self.snapshot_seqs = [0] * workers
        self.seq_regressions = 0
        self.stale_probes = 0
        self.transitions: List[Dict[str, Any]] = []

    def _transition(self, worker: int, state: str, probe: int) -> None:
        if self.states[worker] == state:
            return
        self.transitions.append(
            {
                "worker": worker,
                "from": self.states[worker],
                "to": state,
                "probe": probe,
            }
        )
        self.states[worker] = state

    def observe(
        self, worker: int, probe: int, response: Optional[Dict[str, Any]]
    ) -> str:
        """Feed one probe outcome; returns the worker's new state.

        Args:
            worker: Worker index.
            probe: The monotonic probe id this answer (or miss) is for.
            response: The parsed ``health`` answer, or ``None`` for a
                missed/failed probe.
        """
        if probe <= self.last_probe[worker]:
            # A reordered or replayed answer for an already-settled
            # probe carries no fresh liveness information.
            self.stale_probes += 1
            return self.states[worker]
        self.last_probe[worker] = probe
        if response is None:
            self.misses[worker] += 1
            if self.misses[worker] >= self.miss_threshold:
                self._transition(worker, WORKER_UNAVAILABLE, probe)
            elif self.states[worker] == WORKER_HEALTHY:
                self._transition(worker, WORKER_DEGRADED, probe)
            return self.states[worker]
        self.misses[worker] = 0
        journal_seq = int(response.get("journal_seq", 0))
        snapshot_seq = int(response.get("snapshot_seq", 0))
        if journal_seq < self.journal_seqs[worker]:
            self.seq_regressions += 1
        self.journal_seqs[worker] = journal_seq
        self.snapshot_seqs[worker] = snapshot_seq
        self._transition(worker, WORKER_HEALTHY, probe)
        return self.states[worker]

    def mark_recovering(self, worker: int, probe: int) -> None:
        """A restart is in flight; the next good probe flips healthy."""
        self.misses[worker] = 0
        self._transition(worker, WORKER_RECOVERING, probe)


class InProcessWorker:
    """One shard's durable gateway, hosted in this process.

    Owns a state directory (snapshot + journal) and wraps the durable
    gateway in a :class:`ShardGateway` so misrouted requests bounce
    before touching the journal.  Crash injection mirrors the PR-4
    crash kinds so the fleet chaos harness stays deterministic:

    ``torn``
        kill -9 mid-journal-write: a prefix of the in-flight record
        lands on disk; the op was never applied.
    ``after_journal``
        Crash between WAL append and the mutation: the op is durable
        (recovery replays it) but the worker never answered.
    ``after_apply``
        Crash after applying, before the answer reached the client.
    """

    def __init__(
        self,
        shard: int,
        state_dir: Union[str, Path],
        shard_map: ShardMap,
        fsync: bool = False,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
    ) -> None:
        self.shard = shard
        self.state_dir = Path(state_dir)
        self.shard_map = shard_map
        self.fsync = fsync
        self.snapshot_every = snapshot_every
        self.dedup_window = dedup_window
        self.durable: Optional[DurableGateway] = None
        self.gateway: Optional[ShardGateway] = None
        self.restarts = 0

    @property
    def alive(self) -> bool:
        return self.gateway is not None

    def start(self) -> RecoveryReport:
        """Recover (or freshly open) this worker's durable state."""
        if self.alive:
            raise FleetError(f"worker {self.shard} is already running")
        durable, report = recover(
            self.state_dir,
            fsync=self.fsync,
            snapshot_every=self.snapshot_every,
            dedup_window=self.dedup_window,
        )
        self.durable = durable
        self.gateway = ShardGateway(durable, self.shard, self.shard_map)
        return report

    def handle_line(self, line: str) -> List[str]:
        """Dispatch one request line; response lines in order."""
        if self.gateway is None:
            raise WorkerUnavailable(f"worker {self.shard} is down")
        return [response for _, response in self.gateway.handle_line(line)]

    def probe(self, request: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        """Answer a health probe, or ``None`` if the worker is down."""
        if self.gateway is None:
            return None
        responses = self.handle_line(encode(request))
        return json.loads(responses[0]) if responses else None

    def install_map(self, shard_map: ShardMap) -> None:
        self.shard_map = shard_map
        if self.gateway is not None:
            self.gateway.install_map(shard_map)

    def fingerprint(self) -> str:
        if self.durable is None:
            raise WorkerUnavailable(f"worker {self.shard} is down")
        return registry_fingerprint(self.durable)

    def kill(
        self,
        kind: str = "torn",
        doc: Optional[Dict[str, Any]] = None,
        keep: float = 0.5,
    ) -> None:
        """Whole-worker SIGKILL, optionally mid-operation.

        With ``doc`` the crash lands *on* that operation according to
        ``kind`` (see the class docstring); without it the worker
        simply dies between operations.  Either way nothing is drained
        or flushed — pending batches die with the process and must come
        back via recovery replay.
        """
        if self.durable is None:
            raise WorkerUnavailable(f"worker {self.shard} is already down")
        if doc is not None:
            if kind == "torn":
                self.durable.journal.append_torn(doc, keep=keep)
            elif kind == "after_journal":
                self.durable.journal.append(doc)
            elif kind == "after_apply":
                self.durable.handle_line(encode(doc))
            else:
                raise ValueError(f"unknown crash kind {kind!r}")
        self.durable.close()
        self.durable = None
        self.gateway = None

    def close(self) -> None:
        if self.durable is not None:
            self.durable.close()
            self.durable = None
            self.gateway = None


class FleetSupervisor:
    """Partition, probe, and heal a fleet of in-process workers.

    Routes pipeline-targeted request lines by the installed
    :class:`ShardMap`, broadcasts fleet-wide ops, drives seq-stamped
    heartbeats through the :class:`HeartbeatMonitor`, and restarts
    unavailable workers through the recovery path.  All methods are
    synchronous and deterministic: the supervisor's observable state
    is a pure function of the call sequence, which is what lets the
    chaos harness compare a crashed fleet against a shadow fleet
    line-for-line.
    """

    def __init__(
        self,
        workers: int,
        root_dir: Union[str, Path],
        shard_map: Optional[ShardMap] = None,
        fsync: bool = False,
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        dedup_window: int = DEFAULT_DEDUP_WINDOW,
        miss_threshold: int = DEFAULT_MISS_THRESHOLD,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.root_dir = Path(root_dir)
        self.shard_map = shard_map if shard_map is not None else ShardMap(shards=workers)
        if self.shard_map.shards != workers:
            raise ValueError(
                f"map covers {self.shard_map.shards} shards, fleet has {workers}"
            )
        self.workers = [
            InProcessWorker(
                shard,
                self.root_dir / f"worker-{shard}",
                self.shard_map,
                fsync=fsync,
                snapshot_every=snapshot_every,
                dedup_window=dedup_window,
            )
            for shard in range(workers)
        ]
        self.monitor = HeartbeatMonitor(workers, miss_threshold=miss_threshold)
        self._probe_seq = 0
        self._control_seq = 0
        self.recoveries: List[RecoveryReport] = []

    def start(self) -> List[RecoveryReport]:
        return [worker.start() for worker in self.workers]

    # -- routing ------------------------------------------------------

    def shard_for(self, doc: Dict[str, Any]) -> Optional[int]:
        """The owning shard of a request doc, or ``None`` (fleet-wide)."""
        name = doc.get("pipeline")
        if not isinstance(name, str):
            return None
        return self.shard_map.shard_of(name)

    def dispatch(self, doc: Dict[str, Any]) -> List[str]:
        """Route one request to its owning shard.

        Fleet-wide ops (no ``pipeline`` operand) are broadcast; the
        per-shard responses are concatenated in shard order.

        Raises:
            WorkerUnavailable: The owning worker is down and has not
                been restarted yet.
        """
        shard = self.shard_for(doc)
        line = encode(doc)
        if shard is None:
            responses: List[str] = []
            for worker in self.workers:
                responses.extend(worker.handle_line(line))
            return responses
        return self.workers[shard].handle_line(line)

    # -- heartbeats and healing ---------------------------------------

    def probe(self) -> List[str]:
        """One heartbeat round; returns the per-worker states."""
        states = []
        for worker in self.workers:
            self._probe_seq += 1
            probe_id = self._probe_seq
            request = {"id": f"hb-{probe_id}", "op": "health", "probe": probe_id}
            response = worker.probe(request)
            states.append(self.monitor.observe(worker.shard, probe_id, response))
        return states

    def heal(self) -> List[RecoveryReport]:
        """Restart every worker the monitor declared unavailable."""
        reports = []
        for worker in self.workers:
            if self.monitor.states[worker.shard] == WORKER_UNAVAILABLE:
                reports.append(self.restart(worker.shard))
        return reports

    def restart(self, shard: int) -> RecoveryReport:
        """Recover one dead worker from its WAL; re-arm its heartbeat."""
        worker = self.workers[shard]
        if worker.alive:
            raise FleetError(f"worker {shard} is still running")
        self._probe_seq += 1
        self.monitor.mark_recovering(shard, self._probe_seq)
        worker.install_map(self.shard_map)
        report = worker.start()
        worker.restarts += 1
        self.recoveries.append(report)
        return report

    # -- topology -----------------------------------------------------

    def _control_request(self, op: str, **operands: Any) -> Dict[str, Any]:
        self._control_seq += 1
        return {
            "id": f"fleet-{self._control_seq}",
            "rid": f"fleet-r{self._control_seq}",
            "op": op,
            **operands,
        }

    def install_map(self, shard_map: ShardMap) -> None:
        """Push a newer topology to the supervisor and every worker."""
        if shard_map.version < self.shard_map.version:
            raise ValueError(
                f"map version {shard_map.version} rolls back installed "
                f"version {self.shard_map.version}"
            )
        self.shard_map = shard_map
        for worker in self.workers:
            worker.install_map(shard_map)

    def migrate(self, pipeline: str, to_shard: int) -> ShardMap:
        """Move one pipeline to another shard, state included.

        Snapshot on the current owner, unregister there, install the
        bumped map fleet-wide, then restore on the new owner — all via
        ordinary protocol ops, so every step is journaled and the
        migration itself survives a crash of either worker (the
        snapshot travels inside the restore request, which the new
        owner journals before applying).

        Raises:
            WorkerUnavailable: Either worker involved is down.
            FleetError: A migration step was refused by a worker.
        """
        from_shard = self.shard_map.shard_of(pipeline)
        if from_shard == to_shard:
            raise FleetError(
                f"pipeline {pipeline!r} is already on shard {to_shard}"
            )
        snap_doc = self._control_request("snapshot", pipeline=pipeline)
        snap = self._expect_ok(self.workers[from_shard].handle_line(encode(snap_doc)))
        unreg_doc = self._control_request("unregister", pipeline=pipeline)
        self._expect_ok(self.workers[from_shard].handle_line(encode(unreg_doc)))
        self.install_map(self.shard_map.assign(pipeline, to_shard))
        restore_doc = self._control_request(
            "restore", pipeline=pipeline, snapshot=snap["snapshot"]
        )
        self._expect_ok(self.workers[to_shard].handle_line(encode(restore_doc)))
        return self.shard_map

    @staticmethod
    def _expect_ok(responses: List[str]) -> Dict[str, Any]:
        for line in responses:
            doc = json.loads(line)
            request_id = doc.get("id")
            if isinstance(request_id, str) and request_id.startswith("fleet-"):
                if not doc.get("ok"):
                    raise FleetError(
                        f"fleet control op failed: {doc.get('error')}: "
                        f"{doc.get('detail')}"
                    )
                return doc
        raise FleetError("fleet control op produced no direct response")

    # -- aggregation --------------------------------------------------

    def fleet_health(self) -> Dict[str, Any]:
        """Cross-shard health: per-worker state, seqs, and pipelines."""
        shards: List[Dict[str, Any]] = []
        for worker in self.workers:
            entry: Dict[str, Any] = {
                "shard": worker.shard,
                "state": self.monitor.states[worker.shard],
                "restarts": worker.restarts,
                "journal_seq": self.monitor.journal_seqs[worker.shard],
                "snapshot_seq": self.monitor.snapshot_seqs[worker.shard],
            }
            if worker.alive and worker.durable is not None:
                entry["pipelines"] = sorted(
                    p.name for p in worker.durable.gateway.registry
                )
                entry["draining"] = worker.durable.draining
            shards.append(entry)
        degraded = [s["shard"] for s in shards if s["state"] == WORKER_DEGRADED]
        unavailable = [
            s["shard"]
            for s in shards
            if s["state"] in (WORKER_UNAVAILABLE, WORKER_RECOVERING)
        ]
        return {
            "map_version": self.shard_map.version,
            "workers": len(self.workers),
            "degraded": degraded,
            "unavailable": unavailable,
            "seq_regressions": self.monitor.seq_regressions,
            "shards": shards,
        }

    def fleet_stats(self) -> Dict[str, Any]:
        """Cross-shard ``stats`` aggregation.

        Down shards are reported as ``{"state": "unavailable"}`` rather
        than omitted — a consumer must be able to tell "no pipelines"
        from "no answer".
        """
        per_shard: Dict[str, Any] = {}
        merged: Dict[str, Any] = {}
        for worker in self.workers:
            key = str(worker.shard)
            if not worker.alive:
                per_shard[key] = {
                    "state": self.monitor.states[worker.shard],
                    "stats": None,
                }
                continue
            doc = self._control_request("stats")
            answer = self._expect_ok(worker.handle_line(encode(doc)))
            stats = answer.get("stats", {})
            per_shard[key] = {
                "state": self.monitor.states[worker.shard],
                "stats": stats,
            }
            merged.update(stats)
        return {
            "map_version": self.shard_map.version,
            "pipelines": dict(sorted(merged.items())),
            "shards": per_shard,
        }

    def fingerprints(self) -> List[str]:
        """Per-shard registry fingerprints (shard order)."""
        return [worker.fingerprint() for worker in self.workers]

    def close(self) -> None:
        for worker in self.workers:
            worker.close()


# ----------------------------------------------------------------------
# Real-process fleet (slow_serve tier and the CLI)
# ----------------------------------------------------------------------


class ProcessWorker:
    """One ``python -m repro.serve`` subprocess with durable state.

    The child recovers from ``state_dir`` on every (re)spawn, binds an
    ephemeral port, and prints its bound address, which the parent
    parses.  :meth:`kill` delivers a real ``SIGKILL`` — no drain, no
    atexit — so respawn exercises the same torn-tail recovery the
    in-process chaos gate proves deterministic.
    """

    _BANNER = "repro.serve gateway listening on "

    def __init__(
        self,
        shard: int,
        state_dir: Union[str, Path],
        shard_count: int,
        fsync: bool = False,
    ) -> None:
        self.shard = shard
        self.state_dir = Path(state_dir)
        self.shard_count = shard_count
        self.fsync = fsync
        self.process: Optional[subprocess.Popen] = None
        self.host = "127.0.0.1"
        self.port = 0
        self.spawns = 0

    def spawn(self, timeout: float = 30.0) -> None:
        if self.process is not None and self.process.poll() is None:
            raise FleetError(f"worker {self.shard} is already running")
        command = [
            sys.executable,
            "-m",
            "repro.serve",
            "--host",
            self.host,
            "--port",
            "0",
            "--state-dir",
            str(self.state_dir),
            "--shard-index",
            str(self.shard),
            "--shard-count",
            str(self.shard_count),
        ]
        if self.fsync:
            command.append("--fsync")
        self.process = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            bufsize=1,
        )
        self.spawns += 1
        assert self.process.stdout is not None
        while True:
            line = self.process.stdout.readline()
            if not line:
                raise FleetError(
                    f"worker {self.shard} exited before binding "
                    f"(rc={self.process.poll()})"
                )
            if line.startswith(self._BANNER):
                _, _, address = line.rstrip().rpartition(" ")
                host, _, port = address.rpartition(":")
                self.host, self.port = host, int(port)
                return

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.poll() is None

    def kill(self) -> None:
        """Real SIGKILL: the journal's torn tail is the only goodbye."""
        if self.process is None or self.process.poll() is not None:
            raise FleetError(f"worker {self.shard} is not running")
        os.kill(self.process.pid, signal.SIGKILL)
        self.process.wait()

    def close(self) -> None:
        if self.process is not None and self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()
        if self.process is not None and self.process.stdout is not None:
            self.process.stdout.close()
        self.process = None


class ProcessFleet:
    """A fleet of real subprocess workers under one root directory."""

    def __init__(
        self,
        workers: int,
        root_dir: Optional[Union[str, Path]] = None,
        fsync: bool = False,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self._owns_root = root_dir is None
        self.root_dir = Path(
            tempfile.mkdtemp(prefix="repro-fleet-") if root_dir is None else root_dir
        )
        self.workers = [
            ProcessWorker(
                shard, self.root_dir / f"worker-{shard}", workers, fsync=fsync
            )
            for shard in range(workers)
        ]

    def spawn(self) -> None:
        for worker in self.workers:
            worker.spawn()

    def close(self) -> None:
        for worker in self.workers:
            worker.close()
        if self._owns_root:
            import shutil

            shutil.rmtree(self.root_dir, ignore_errors=True)

    def __enter__(self) -> "ProcessFleet":
        self.spawn()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()
