"""Crash recovery and the serve-layer crash/partition chaos harness.

Recovery rebuilds a gateway from its durable state directory: load the
compaction snapshot (if one exists), replay the journal suffix through
a fresh :class:`~repro.serve.gateway.AdmissionGateway`, audit every
recovered controller with the PR-2 invariant checks, and hand back a
:class:`~repro.serve.journal.DurableGateway` ready to serve.  Because
the core is deterministic and the journal is written *before* each
mutation, the recovered gateway is bitwise identical to the pre-crash
one — :func:`registry_fingerprint` makes that comparable as a single
canonical JSON string covering policies, clocks, counters, controller
snapshots, pending admission batches, and the idempotency window.

The chaos harness (:func:`run_crash_chaos`) drives a durable gateway
and an in-memory *shadow* gateway in lockstep through a seeded op
stream, injecting serve-layer faults:

``torn``
    ``kill -9`` mid-journal-write: a prefix of the record reaches
    disk.  The op was never acknowledged; recovery truncates the tail
    and the client's retry re-runs it.
``after_journal``
    Crash between the journal append and the in-memory mutation.  The
    op *is* durable — replay applies it — but the client never saw a
    response and retries; the dedup window serves the replayed
    decision instead of double-admitting.
``after_apply``
    Crash (or connection drop) after the mutation but before the
    response is delivered.  The retry is served from the dedup cache.
``stall``
    No crash: the response is delivered late enough that the client
    retries anyway, exercising live deduplication.

After every recovery the harness retries each unacknowledged request
id and asserts that the recovered gateway matches the shadow
fingerprint — zero lost admissions, zero duplicated admissions, and no
decision ever changing across a crash.
"""

from __future__ import annotations

import json
import random
import shutil
import tempfile
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from .gateway import DEFAULT_DEDUP_WINDOW, AdmissionGateway
from .journal import (
    DEFAULT_SNAPSHOT_EVERY,
    GATEWAY_SNAPSHOT_FORMAT,
    DurableGateway,
    Journal,
    scan_journal,
)
from .protocol import encode, task_to_wire
from .registry import ServedPipeline
from .snapshot import controller_snapshot, restore_controller, verify_restored

__all__ = [
    "SNAPSHOT_FILE",
    "JOURNAL_FILE",
    "CRASH_CHAOS_REPORT_FORMAT",
    "RecoveryError",
    "RecoveryReport",
    "restore_gateway_snapshot",
    "recover",
    "registry_fingerprint",
    "run_crash_chaos",
    "crash_chaos_gate_failures",
]

#: File names inside a gateway state directory.
SNAPSHOT_FILE = "snapshot.json"
JOURNAL_FILE = "journal.ndjson"

#: Version tag of the chaos-harness report document.
CRASH_CHAOS_REPORT_FORMAT = "repro.serve.crash-chaos-report/1"


class RecoveryError(ValueError):
    """Durable state that cannot be recovered into a clean gateway."""


@dataclass
class RecoveryReport:
    """What one recovery pass found and did.

    Attributes:
        snapshot_loaded: Whether a compaction snapshot was restored.
        snapshot_seq: Journal sequence the snapshot covered (0 if none).
        last_seq: Highest journal sequence after replay.
        replayed: Journal records applied.
        skipped: Records at or below ``snapshot_seq`` (a crash between
            snapshot write and journal reset leaves these behind).
        truncated_bytes: Torn-tail bytes removed from the journal.
        pipelines: Recovered pipeline names, sorted.
        region_values: Post-recovery region value per pipeline.
    """

    snapshot_loaded: bool = False
    snapshot_seq: int = 0
    last_seq: int = 0
    replayed: int = 0
    skipped: int = 0
    truncated_bytes: int = 0
    pipelines: List[str] = field(default_factory=list)
    region_values: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "snapshot_loaded": self.snapshot_loaded,
            "snapshot_seq": self.snapshot_seq,
            "last_seq": self.last_seq,
            "replayed": self.replayed,
            "skipped": self.skipped,
            "truncated_bytes": self.truncated_bytes,
            "pipelines": list(self.pipelines),
            "region_values": dict(self.region_values),
        }


def restore_gateway_snapshot(
    gateway: AdmissionGateway, doc: Dict[str, Any]
) -> int:
    """Load a gateway-level snapshot document into a fresh gateway.

    Returns:
        The journal sequence number the snapshot covers.

    Raises:
        RecoveryError: On a wrong format tag or an unloadable pipeline.
    """
    if not isinstance(doc, dict) or doc.get("format") != GATEWAY_SNAPSHOT_FORMAT:
        raise RecoveryError(
            f"expected a {GATEWAY_SNAPSHOT_FORMAT!r} snapshot document, "
            f"got format {doc.get('format') if isinstance(doc, dict) else doc!r}"
        )
    try:
        for pipeline_doc in doc["pipelines"]:
            gateway.registry.adopt(ServedPipeline.from_snapshot(pipeline_doc))
        gateway.draining = bool(doc["draining"])
        gateway.errors = int(doc["errors"])
        gateway.op_counts = {
            key: int(value) for key, value in doc["op_counts"].items()
        }
        gateway.dedup_hits = int(doc["dedup_hits"])
        gateway.load_dedup_state(doc["dedup"])
        return int(doc["seq"])
    except RecoveryError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise RecoveryError(f"unloadable gateway snapshot: {exc}") from exc


def recover(
    state_dir: Union[str, Path],
    fsync: bool = False,
    snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
    dedup_window: int = DEFAULT_DEDUP_WINDOW,
) -> Tuple[DurableGateway, RecoveryReport]:
    """Rebuild a durable gateway from its state directory.

    An empty (or missing) directory recovers to a fresh gateway, so
    this is also the way to *open* durable state for the first time.
    Every recovered controller is audited — on a **copy**, because the
    auditor's expiry sweep mutates state and the recovered gateway must
    stay bitwise identical to the pre-crash one.

    Raises:
        RecoveryError: On an unloadable snapshot or a recovered
            controller that fails the invariant audit.
        JournalError: On mid-journal corruption or a sequence gap.
    """
    state_dir = Path(state_dir)
    state_dir.mkdir(parents=True, exist_ok=True)
    snapshot_path = state_dir / SNAPSHOT_FILE
    journal_path = state_dir / JOURNAL_FILE

    gateway = AdmissionGateway(dedup_window=dedup_window)
    report = RecoveryReport()
    if snapshot_path.exists():
        with open(snapshot_path, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
        report.snapshot_seq = restore_gateway_snapshot(gateway, doc)
        report.snapshot_loaded = True

    scan = scan_journal(journal_path)
    report.truncated_bytes = scan.truncated_bytes
    report.last_seq = report.snapshot_seq
    for record in scan.records:
        if record["seq"] <= report.snapshot_seq:
            # The snapshot already covers this record: the pre-crash
            # gateway checkpointed but died before resetting the
            # journal.  Replaying it would double-apply the op.
            report.skipped += 1
            continue
        op = record["op"]
        if op.get("synthetic") and op.get("op") == "drain":
            gateway.drain()
        else:
            gateway.handle_line(encode(op), origin=None)
        report.replayed += 1
        report.last_seq = record["seq"]

    for pipeline in gateway.registry:
        # Audit a restored copy: ControllerAuditor.audit runs an expiry
        # sweep, and mutating the live recovered controller would break
        # the bitwise-equivalence contract recovery exists to provide.
        audit_copy = restore_controller(controller_snapshot(pipeline.controller))
        check_at = pipeline.clock if pipeline.clock is not None else 0.0
        violations = verify_restored(audit_copy, check_at)
        if violations:
            raise RecoveryError(
                f"recovered pipeline {pipeline.name!r} failed audit: "
                + "; ".join(f"{v.kind}: {v.detail}" for v in violations)
            )
        report.pipelines.append(pipeline.name)
        report.region_values[pipeline.name] = pipeline.controller.region_value()
    report.pipelines.sort()

    journal = Journal(journal_path, fsync=fsync, next_seq=report.last_seq + 1)
    durable = DurableGateway(
        gateway,
        journal,
        snapshot_path,
        snapshot_every=snapshot_every,
        last_snapshot_seq=report.snapshot_seq,
    )
    # Replayed ops count toward the compaction period — otherwise a
    # gateway that crashes faster than ``snapshot_every`` fresh ops
    # arrive replays an ever-growing journal on every recovery.
    durable._ops_since_snapshot = report.replayed
    durable._maybe_compact()
    return durable, report


def registry_fingerprint(gateway: Union[AdmissionGateway, DurableGateway]) -> str:
    """Canonical JSON string of everything the durability contract covers.

    Includes per-pipeline policy, virtual clock, serving counters,
    controller snapshot, degradation-manager state (capacity estimator
    + sacrifice ledger), and the *pending* admission-batch queue, plus
    the gateway's drain flag and idempotency window.  Deliberately
    excludes ``op_counts``/``errors``/``dedup_hits`` — those are
    diagnostics (dedup hits, for one, are served without journaling).
    Two gateways with equal fingerprints make identical future
    decisions.
    """
    core = gateway.gateway if isinstance(gateway, DurableGateway) else gateway
    doc = {
        "draining": core.draining,
        "dedup": core.dedup_state(),
        "pipelines": [
            {
                "name": pipeline.name,
                "policy": pipeline.policy.to_dict(),
                "clock": pipeline.clock,
                "counters": pipeline.counters.to_dict(),
                "controller": controller_snapshot(pipeline.controller),
                "degradation": pipeline.degradation.fingerprint_doc(),
                "pending": [
                    task_to_wire(task) for task in pipeline.pending_tasks()
                ],
            }
            for pipeline in core.registry
        ],
    }
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


# ----------------------------------------------------------------------
# Crash/partition chaos harness
# ----------------------------------------------------------------------

_CRASH_KINDS = ("torn", "after_journal", "after_apply")

_CHAOS_POLICIES: Dict[str, Dict[str, Any]] = {
    "batched": {"num_stages": 3, "alpha": 0.9, "max_batch": 3},
    "direct": {"num_stages": 2, "alpha": 1.0},
    # Online PCP blocking bounds: admits carry shared-resource
    # declarations and the controller derives beta_j from the admitted
    # set, so crash/replay must rebuild the blocking state bitwise too.
    "locked": {"num_stages": 2, "alpha": 0.9, "locking": True},
}

#: Resource ids the chaos op stream contends on (locking pipeline).
_CHAOS_RESOURCES = ("lock-a", "lock-b")


def run_crash_chaos(
    seed: int = 0,
    cycles: int = 24,
    ops_per_cycle: int = 12,
    state_dir: Optional[Union[str, Path]] = None,
    snapshot_every: int = 25,
    fsync: bool = False,
    dedup_window: int = DEFAULT_DEDUP_WINDOW,
) -> Dict[str, Any]:
    """Crash/recover a durable gateway ``cycles`` times; prove equivalence.

    Every cycle ends in an injected crash (``torn`` / ``after_journal``
    / ``after_apply``, chosen by the seeded RNG) followed by recovery,
    outstanding-request retries, and a fingerprint comparison against a
    shadow gateway that never crashed.  Slow-response stalls inject
    redundant retries mid-cycle.  The returned report is byte-stable
    for a given parameter set (no wall-clock, no paths).

    Args:
        seed: RNG seed driving the op stream and fault choices.
        cycles: Crash/recover cycles to run.
        ops_per_cycle: Ops generated per cycle (the crash lands on one).
        state_dir: Durable state directory; a private temporary
            directory (removed afterwards) if ``None``.
        snapshot_every: Compaction period of the durable gateway.
        fsync: Run the journal with per-record fsync.
        dedup_window: Idempotency window size for both gateways.
    """
    if cycles < 1:
        raise ValueError(f"cycles must be >= 1, got {cycles}")
    if ops_per_cycle < 2:
        raise ValueError(f"ops_per_cycle must be >= 2, got {ops_per_cycle}")
    owns_dir = state_dir is None
    root = Path(tempfile.mkdtemp(prefix="repro-serve-chaos-") if owns_dir else state_dir)
    try:
        return _run_crash_chaos(
            rng=random.Random(seed),
            seed=seed,
            cycles=cycles,
            ops_per_cycle=ops_per_cycle,
            root=root,
            snapshot_every=snapshot_every,
            fsync=fsync,
            dedup_window=dedup_window,
        )
    finally:
        if owns_dir:
            shutil.rmtree(root, ignore_errors=True)


def _run_crash_chaos(
    rng: random.Random,
    seed: int,
    cycles: int,
    ops_per_cycle: int,
    root: Path,
    snapshot_every: int,
    fsync: bool,
    dedup_window: int,
) -> Dict[str, Any]:
    durable, _ = recover(
        root, fsync=fsync, snapshot_every=snapshot_every, dedup_window=dedup_window
    )
    shadow = AdmissionGateway(dedup_window=dedup_window)

    next_id = 0
    next_task_id = 0
    now = 0.0
    id_to_rid: Dict[int, str] = {}
    unacked: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
    ledger: Dict[str, Any] = {}
    crash_counts = {kind: 0 for kind in _CRASH_KINDS}
    crashes_with_pending = 0
    stall_retries = 0
    contended_admits = 0
    response_mismatches = 0
    decision_mismatches = 0
    fingerprint_matches = 0
    fingerprint_mismatches = 0
    ops_issued = 0
    recoveries: List[RecoveryReport] = []

    def fresh_id() -> int:
        nonlocal next_id
        next_id += 1
        return next_id

    def ack(response: Dict[str, Any]) -> None:
        nonlocal decision_mismatches
        rid = id_to_rid.get(response.get("id"))
        if rid is None:
            return
        if response.get("error") == "duplicate-request":
            # "Still queued, retry later" — not a final answer.
            return
        unacked.pop(rid, None)
        decision = response.get("admitted")
        if rid in ledger:
            if ledger[rid] != decision:
                decision_mismatches += 1
        else:
            ledger[rid] = decision

    def apply(doc: Dict[str, Any]) -> None:
        nonlocal response_mismatches
        line = encode(doc)
        got = [response for _, response in durable.handle_line(line)]
        want = [response for _, response in shadow.handle_line(line)]
        if got != want:
            response_mismatches += 1
        for response in got:
            ack(json.loads(response))

    def issue(doc: Dict[str, Any]) -> None:
        id_to_rid[doc["id"]] = doc["rid"]
        if doc["rid"] not in ledger:
            unacked[doc["rid"]] = doc

    def retry(doc: Dict[str, Any]) -> None:
        again = dict(doc)
        again["id"] = fresh_id()
        id_to_rid[again["id"]] = doc["rid"]
        apply(again)

    def gen_op() -> Dict[str, Any]:
        nonlocal now, next_task_id, ops_issued, contended_admits
        ops_issued += 1
        now += rng.uniform(0.05, 0.3)
        request_id = fresh_id()
        name = rng.choice(sorted(_CHAOS_POLICIES))
        stages = _CHAOS_POLICIES[name]["num_stages"]
        doc: Dict[str, Any] = {
            "id": request_id,
            "rid": f"r{request_id}",
            "pipeline": name,
        }
        roll = rng.random()
        if roll < 0.60:
            next_task_id += 1
            doc["op"] = "admit"
            doc["task"] = {
                "task_id": next_task_id,
                "arrival": now,
                "deadline": now + rng.uniform(0.8, 2.5),
                "costs": [rng.uniform(0.02, 0.15) for _ in range(stages)],
            }
            if _CHAOS_POLICIES[name].get("locking") and rng.random() < 0.7:
                # Contention workload: most admits on the locking
                # pipeline declare critical sections on a tiny shared
                # pool, so B_ij/beta_j churn on every admit/expire and
                # recovery has real blocking state to rebuild.
                contended_admits += 1
                picks = rng.sample(
                    [(s, r) for s in range(stages) for r in _CHAOS_RESOURCES],
                    rng.randrange(1, 3),
                )
                doc["task"]["resources"] = [
                    {
                        "stage": stage,
                        "resource": resource,
                        "max_length": rng.uniform(0.0, 0.08),
                    }
                    for stage, resource in sorted(picks)
                ]
        elif roll < 0.72:
            doc["op"] = "depart"
            doc["task_id"] = rng.randrange(1, max(2, next_task_id + 1))
            doc["stage"] = rng.randrange(stages)
        elif roll < 0.82:
            doc["op"] = "expire"
            doc["now"] = now
        elif roll < 0.88:
            doc["op"] = "idle"
            doc["stage"] = rng.randrange(stages)
        elif roll < 0.94:
            doc["op"] = "capacity"
            doc["stage"] = rng.randrange(stages)
            doc["capacity"] = rng.uniform(0.6, 1.0)
        else:
            doc["op"] = "stats"
        return doc

    def settle_outstanding() -> None:
        """Client retry protocol after a recovery: retry everything
        unacknowledged; if retries bounce off a still-pending batch,
        force a flush with a drain request and retry once more."""
        for doc in list(unacked.values()):
            retry(doc)
        if unacked:
            drain_id = fresh_id()
            drain_doc = {"id": drain_id, "op": "drain", "rid": f"r{drain_id}"}
            issue(drain_doc)
            apply(drain_doc)
            for doc in list(unacked.values()):
                retry(doc)

    def crash_and_recover() -> None:
        nonlocal durable, fingerprint_matches, fingerprint_mismatches
        durable.close()
        durable, report = recover(
            root,
            fsync=fsync,
            snapshot_every=snapshot_every,
            dedup_window=dedup_window,
        )
        recoveries.append(report)
        if registry_fingerprint(durable) == registry_fingerprint(shadow):
            fingerprint_matches += 1
        else:
            fingerprint_mismatches += 1
        settle_outstanding()

    for name in sorted(_CHAOS_POLICIES):
        register_id = fresh_id()
        register_doc = {
            "id": register_id,
            "rid": f"r{register_id}",
            "op": "register",
            "pipeline": name,
            "policy": dict(_CHAOS_POLICIES[name]),
        }
        issue(register_doc)
        apply(register_doc)

    for _cycle in range(cycles):
        kind = _CRASH_KINDS[rng.randrange(len(_CRASH_KINDS))]
        crash_at = rng.randrange(1, ops_per_cycle)
        for index in range(ops_per_cycle):
            doc = gen_op()
            issue(doc)
            if index == crash_at:
                if kind == "torn":
                    # kill -9 mid-write: a prefix of the record lands on
                    # disk; neither gateway applied the op.
                    durable.journal.append_torn(doc, keep=rng.uniform(0.1, 0.9))
                elif kind == "after_journal":
                    # Crash between WAL append and the mutation: the op
                    # is durable (replay applies it), the response is
                    # lost.  The shadow applies it now to stay in step.
                    durable.journal.append(doc)
                    shadow.handle_line(encode(doc))
                else:  # after_apply — connection drop mid-response
                    line = encode(doc)
                    got = [response for _, response in durable.handle_line(line)]
                    want = [response for _, response in shadow.handle_line(line)]
                    if got != want:
                        response_mismatches += 1
                crash_counts[kind] += 1
                if any(p.pending for p in shadow.registry):
                    crashes_with_pending += 1
                crash_and_recover()
                break
            apply(doc)
            if rng.random() < 0.2:
                # Slow-write / slow-response stall: the answer arrives
                # so late the client has already retried.
                stall_retries += 1
                retry(doc)

    final_drain_id = fresh_id()
    final_drain = {"id": final_drain_id, "op": "drain", "rid": f"r{final_drain_id}"}
    issue(final_drain)
    apply(final_drain)
    for doc in list(unacked.values()):
        retry(doc)

    final_identical = registry_fingerprint(durable) == registry_fingerprint(shadow)
    acked_admitted = sum(1 for decision in ledger.values() if decision is True)
    counted_admitted = sum(
        pipeline.counters.admitted for pipeline in durable.gateway.registry
    )
    shadow_admitted = sum(
        pipeline.counters.admitted for pipeline in shadow.registry
    )
    durable.close()

    return {
        "format": CRASH_CHAOS_REPORT_FORMAT,
        "seed": seed,
        "cycles": cycles,
        "ops_per_cycle": ops_per_cycle,
        "snapshot_every": snapshot_every,
        "fsync": fsync,
        "ops_issued": ops_issued,
        "crashes": {**crash_counts, "total": sum(crash_counts.values())},
        "crashes_with_pending_batch": crashes_with_pending,
        "stall_retries": stall_retries,
        "contended_admits": contended_admits,
        "recoveries": {
            "count": len(recoveries),
            "snapshot_loads": sum(1 for r in recoveries if r.snapshot_loaded),
            "replayed": sum(r.replayed for r in recoveries),
            "skipped": sum(r.skipped for r in recoveries),
            "truncated_bytes": sum(r.truncated_bytes for r in recoveries),
        },
        "dedup_hits": {
            "durable": durable.gateway.dedup_hits,
            "shadow": shadow.dedup_hits,
        },
        "admissions": {
            "acked_admitted": acked_admitted,
            "counted_admitted": counted_admitted,
            "shadow_admitted": shadow_admitted,
            "lost": max(0, acked_admitted - counted_admitted),
            "duplicated": max(0, counted_admitted - acked_admitted),
            "decision_mismatches": decision_mismatches,
            "response_mismatches": response_mismatches,
            "unresolved": len(unacked),
        },
        "equivalence": {
            "fingerprint_matches": fingerprint_matches,
            "fingerprint_mismatches": fingerprint_mismatches,
            "final_identical": final_identical,
        },
        "region_values": {
            pipeline.name: pipeline.controller.region_value()
            for pipeline in durable.gateway.registry
        },
    }


def crash_chaos_gate_failures(
    report: Dict[str, Any], min_recoveries: int = 20
) -> List[str]:
    """Check a chaos report against the durability acceptance gates."""
    failures: List[str] = []
    admissions = report["admissions"]
    if admissions["lost"]:
        failures.append(f"{admissions['lost']} acked admissions lost to crashes")
    if admissions["duplicated"]:
        failures.append(f"{admissions['duplicated']} admissions double-counted")
    if admissions["decision_mismatches"]:
        failures.append(
            f"{admissions['decision_mismatches']} retries changed their decision"
        )
    if admissions["response_mismatches"]:
        failures.append(
            f"{admissions['response_mismatches']} durable/shadow response divergences"
        )
    if admissions["unresolved"]:
        failures.append(
            f"{admissions['unresolved']} requests never acknowledged"
        )
    equivalence = report["equivalence"]
    if equivalence["fingerprint_mismatches"]:
        failures.append(
            f"{equivalence['fingerprint_mismatches']} post-recovery fingerprint "
            "mismatches"
        )
    if not equivalence["final_identical"]:
        failures.append("final durable/shadow fingerprints differ")
    if report["recoveries"]["count"] < min_recoveries:
        failures.append(
            f"only {report['recoveries']['count']} crash/recover cycles ran "
            f"(need >= {min_recoveries})"
        )
    for kind in _CRASH_KINDS:
        if report["crashes"][kind] == 0:
            failures.append(f"crash kind {kind!r} was never exercised")
    if report["crashes_with_pending_batch"] == 0:
        failures.append("no crash landed while an admission batch was pending")
    if report["recoveries"]["snapshot_loads"] == 0:
        failures.append("no recovery ever loaded a compaction snapshot")
    if report["stall_retries"] == 0:
        failures.append("no slow-response stall retries were injected")
    if report.get("contended_admits", 0) == 0:
        failures.append(
            "no resource-bearing admissions exercised the locking pipeline"
        )
    return failures
