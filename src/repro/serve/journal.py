"""Write-ahead journal for the admission gateway.

The gateway core is deterministic: its state is a pure function of the
request-line sequence it has processed.  Durability therefore reduces
to *command journaling* — append each state-mutating request to an
append-only log **before** dispatching it, and a crashed gateway can be
rebuilt bitwise-identically by replaying the log through a fresh core
(see :mod:`repro.serve.recovery`).  This is what lets the recovered
controller keep the paper's premise that the synthetic-utilization
bookkeeping ``U_j(t)`` is *exact*: no admitted contribution is lost to
a crash, so Theorem 1's sufficient condition keeps holding across
restarts (DESIGN.md §10).

Journal records are canonical NDJSON::

    {"crc":"184f2c3b","op":{...request...},"seq":12}

- ``seq`` is a strictly monotonic sequence number (contiguous within a
  journal file).
- ``crc`` is the CRC-32 of the canonical encoding of ``{"op":...,
  "seq":...}`` — a torn or bit-flipped record never validates.
- ``op`` is the parsed request document re-encoded canonically, so a
  record replays through :meth:`AdmissionGateway.handle_line
  <repro.serve.gateway.AdmissionGateway.handle_line>` exactly as the
  original line did.

Torn-tail semantics (see :func:`scan_journal`): a crash can leave a
*prefix* of the final record on disk (records are written in one
``write`` of ``line + "\\n"``).  Any unterminated or invalid tail is
truncated — its operation was never acknowledged, so dropping it is
safe and the idempotent client retries it.  Invalid records *before*
the final line, or sequence gaps, mean real corruption and raise
:class:`JournalError` instead of being silently skipped.

Compaction: the journal grows forever unless checkpointed.
:class:`DurableGateway` periodically writes a gateway-level snapshot
(wrapping the audited PR-3 pipeline snapshots) and resets the journal;
recovery loads the snapshot and replays only the journal suffix.  The
snapshot is written atomically (temp file + ``os.replace``) and the
journal reset *afterwards*, so a crash between the two leaves a journal
whose early records duplicate the snapshot — recovery skips records
with ``seq`` at or below the snapshot's sequence number.
"""

from __future__ import annotations

import asyncio
import json
import os
import tempfile
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from .gateway import AdmissionGateway, Routed
from .protocol import OPS, ProtocolError, parse_request

__all__ = [
    "GATEWAY_SNAPSHOT_FORMAT",
    "JOURNALED_OPS",
    "JournalError",
    "Journal",
    "JournalScan",
    "scan_journal",
    "encode_record",
    "decode_record",
    "record_crc",
    "fsync_dir",
    "gateway_snapshot",
    "write_gateway_snapshot",
    "DurableGateway",
    "DEFAULT_SNAPSHOT_EVERY",
]

#: Version tag of the gateway-level snapshot written by compaction.
GATEWAY_SNAPSHOT_FORMAT = "repro.serve.gateway-snapshot/1"

#: Operations that reach the journal.  ``health`` is read-only; every
#: other op can mutate state (barrier ops flush pending batches even
#: when their own operand is invalid, so they are journaled too).
JOURNALED_OPS = frozenset(OPS) - {"health"}

#: Journaled operations between snapshot compactions, by default.
DEFAULT_SNAPSHOT_EVERY = 256


class JournalError(ValueError):
    """A journal that cannot be trusted: mid-file corruption or a
    sequence gap (torn *tails* are expected and truncated instead)."""


def _canonical(doc: Dict[str, Any]) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"), allow_nan=False)


def fsync_dir(path: Union[str, Path]) -> None:
    """fsync a *directory*, making completed renames in it durable.

    ``os.replace`` (and the journal's truncate-and-reopen reset) only
    update the directory entry; on power loss the rename itself can
    vanish even though the file's *data* was fsynced.  POSIX requires
    an fsync of the directory's own file descriptor to pin the entry
    (``O_DIRECTORY`` narrows the open where the platform supports it).
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    fd = os.open(str(path), flags)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def record_crc(op: Dict[str, Any], seq: int) -> str:
    """CRC-32 (8 hex chars) over the canonical ``{"op":...,"seq":...}``."""
    payload = _canonical({"op": op, "seq": seq}).encode("utf-8")
    return "%08x" % (zlib.crc32(payload) & 0xFFFFFFFF)


def encode_record(op: Dict[str, Any], seq: int) -> str:
    """Render one journal record as its canonical NDJSON line."""
    return _canonical({"crc": record_crc(op, seq), "op": op, "seq": seq})


def decode_record(line: str) -> Dict[str, Any]:
    """Parse and validate one journal line.

    Returns:
        The record as ``{"crc": ..., "op": ..., "seq": ...}``.

    Raises:
        ValueError: On malformed JSON, a wrong field set, an ill-typed
            ``seq``/``op``, or a CRC mismatch.
    """
    doc = json.loads(line)
    if not isinstance(doc, dict) or set(doc) != {"crc", "op", "seq"}:
        raise ValueError("journal record must have exactly crc/op/seq fields")
    seq = doc["seq"]
    if not isinstance(seq, int) or isinstance(seq, bool) or seq < 1:
        raise ValueError(f"journal seq must be a positive integer, got {seq!r}")
    op = doc["op"]
    if not isinstance(op, dict):
        raise ValueError("journal op must be a JSON object")
    want = record_crc(op, seq)
    if doc["crc"] != want:
        raise ValueError(f"journal crc {doc['crc']!r} != computed {want!r}")
    return doc


@dataclass
class JournalScan:
    """Result of scanning a journal file.

    Attributes:
        records: Validated records in sequence order.
        truncated_bytes: Length of the torn tail removed, if any.
    """

    records: List[Dict[str, Any]] = field(default_factory=list)
    truncated_bytes: int = 0


def scan_journal(path: Union[str, Path], truncate: bool = True) -> JournalScan:
    """Read, validate, and (optionally) repair a journal file.

    A missing file scans as empty.  An invalid *final* line that is not
    newline-terminated is a torn write from a crash: it is dropped
    (and, with ``truncate``, physically removed so appends resume on a
    clean boundary).  Anything else invalid — a corrupt record before
    the tail, a newline-terminated record that fails validation, or a
    non-contiguous sequence — raises.

    Raises:
        JournalError: On mid-file corruption or a sequence gap.
    """
    path = Path(path)
    if not path.exists():
        return JournalScan()
    data = path.read_bytes()
    scan = JournalScan()
    good_size = 0
    expected_seq: Optional[int] = None
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        chunk = data[offset:] if newline < 0 else data[offset:newline]
        terminated = newline >= 0
        try:
            record = decode_record(chunk.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            if not terminated:
                # Torn tail: a prefix of the final record.  Its op was
                # never acknowledged, so dropping it loses nothing.
                scan.truncated_bytes = len(data) - offset
                break
            raise JournalError(
                f"corrupt journal record at byte {offset} of {path.name}: {exc}"
            ) from exc
        if not terminated:
            # A record that validates but lost its newline still counts
            # as torn: the write was cut exactly at the terminator and
            # the op was never acknowledged.  Treating it as durable
            # would make recovery depend on *where* the tear landed.
            scan.truncated_bytes = len(data) - offset
            break
        if expected_seq is not None and record["seq"] != expected_seq:
            raise JournalError(
                f"journal sequence gap in {path.name}: expected seq "
                f"{expected_seq}, found {record['seq']}"
            )
        expected_seq = record["seq"] + 1
        scan.records.append(record)
        good_size = newline + 1
        offset = newline + 1
    if scan.truncated_bytes and truncate:
        with open(path, "r+b") as handle:
            handle.truncate(good_size)
    return scan


class Journal:
    """Append-only NDJSON write-ahead log.

    Every append is flushed to the OS before returning — a process
    crash (the ``kill -9`` model) loses at most the final, torn record.
    ``fsync=True`` additionally survives whole-machine power loss at a
    large throughput cost (see ``benchmarks/bench_serve.py``).

    Args:
        path: Journal file (created if missing, appended otherwise).
        fsync: Force each record to stable storage.
        next_seq: Sequence number of the next record (recovery passes
            ``last replayed seq + 1``).
    """

    def __init__(
        self, path: Union[str, Path], fsync: bool = False, next_seq: int = 1
    ) -> None:
        if next_seq < 1:
            raise ValueError(f"next_seq must be >= 1, got {next_seq}")
        self.path = Path(path)
        self.fsync = fsync
        self._next_seq = next_seq
        self._file = open(self.path, "a", encoding="utf-8")

    @property
    def last_seq(self) -> int:
        """Sequence number of the most recently appended record."""
        return self._next_seq - 1

    def _sync(self) -> None:
        self._file.flush()
        if self.fsync:
            os.fsync(self._file.fileno())

    def append(self, op: Dict[str, Any]) -> int:
        """Append one op record; return its sequence number."""
        seq = self._next_seq
        self._file.write(encode_record(op, seq) + "\n")
        self._sync()
        self._next_seq += 1
        return seq

    def append_torn(self, op: Dict[str, Any], keep: float = 0.5) -> None:
        """Write a *partial* record with no newline (crash injection).

        Simulates a ``kill -9`` mid-write: a prefix of the record
        reaches disk, the terminator does not, and the sequence number
        is *not* consumed (the op never became durable).  The journal
        must be discarded afterwards — only :func:`scan_journal` can
        repair the tail.
        """
        if not 0.0 < keep < 1.0:
            raise ValueError(f"keep must be in (0, 1), got {keep}")
        line = encode_record(op, self._next_seq)
        cut = max(1, int(len(line) * keep))
        self._file.write(line[:cut])
        self._sync()

    def reset(self, next_seq: int) -> None:
        """Truncate the journal (after a snapshot made it redundant).

        In fsync mode the parent directory is fsynced too: the
        truncate-and-reopen rewrites the directory entry, and losing
        that update to a power cut would resurrect pre-compaction
        records *below* the snapshot's sequence — harmless for replay
        (recovery skips them) but a durability lie about journal size.
        """
        if next_seq < 1:
            raise ValueError(f"next_seq must be >= 1, got {next_seq}")
        self._file.close()
        self._file = open(self.path, "w", encoding="utf-8")
        self._sync()
        if self.fsync:
            fsync_dir(self.path.parent)
        self._next_seq = next_seq

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()


# ----------------------------------------------------------------------
# Gateway-level snapshot (compaction checkpoint)
# ----------------------------------------------------------------------


def gateway_snapshot(gateway: AdmissionGateway, seq: int) -> Dict[str, Any]:
    """Serialize full gateway state as of journal sequence ``seq``.

    Wraps one audited pipeline snapshot per registered pipeline plus
    the gateway-level counters and the idempotency window, so recovery
    restores retry deduplication along with controller state.

    Raises:
        ProtocolError: If any pipeline has a pending admission batch
            (compaction callers check first).
    """
    return {
        "format": GATEWAY_SNAPSHOT_FORMAT,
        "seq": seq,
        "draining": gateway.draining,
        "errors": gateway.errors,
        "op_counts": dict(sorted(gateway.op_counts.items())),
        "dedup_hits": gateway.dedup_hits,
        "dedup": gateway.dedup_state(),
        "pipelines": [pipeline.snapshot() for pipeline in gateway.registry],
    }


def write_gateway_snapshot(
    path: Union[str, Path], doc: Dict[str, Any], fsync: bool = False
) -> None:
    """Atomically write a snapshot document (temp file + ``os.replace``).

    With ``fsync``, the write is made power-loss durable in the full
    three-step discipline: fsync the temp file's *data*, rename it over
    the target, then fsync the *parent directory* so the rename's
    directory-entry update itself survives — without the last step a
    crash can roll the directory back to the old snapshot even though
    the new bytes were stable.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        prefix=path.name + ".", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(_canonical(doc) + "\n")
            handle.flush()
            if fsync:
                os.fsync(handle.fileno())
        os.replace(tmp_name, path)
        if fsync:
            fsync_dir(path.parent)
    except BaseException:
        if os.path.exists(tmp_name):
            os.unlink(tmp_name)
        raise


class DurableGateway:
    """A write-ahead-journaled wrapper around :class:`AdmissionGateway`.

    Satisfies :class:`~repro.serve.gateway.GatewayLike`, so it drops
    into :class:`~repro.serve.gateway.GatewayServer` and
    :class:`~repro.serve.client.InProcessTransport` unchanged.  Each
    state-mutating request line is journaled *before* the core
    dispatches it; requests that cannot mutate controller state (bad
    JSON, ``health``, idempotent-retry hits) bypass the journal.

    Args:
        gateway: The wrapped core (usually freshly recovered).
        journal: The open write-ahead log.
        snapshot_path: Where compaction checkpoints go.
        snapshot_every: Journaled ops between compaction attempts
            (``0`` disables automatic compaction).
        last_snapshot_seq: Sequence already covered by the snapshot on
            disk (recovery passes this through).
    """

    def __init__(
        self,
        gateway: AdmissionGateway,
        journal: Journal,
        snapshot_path: Union[str, Path],
        snapshot_every: int = DEFAULT_SNAPSHOT_EVERY,
        last_snapshot_seq: int = 0,
    ) -> None:
        if snapshot_every < 0:
            raise ValueError(f"snapshot_every must be >= 0, got {snapshot_every}")
        self.gateway = gateway
        self.journal = journal
        self.snapshot_path = Path(snapshot_path)
        self.snapshot_every = snapshot_every
        self.last_snapshot_seq = last_snapshot_seq
        self._ops_since_snapshot = 0
        # Surface durable progress in ``health`` responses so fleet
        # heartbeats can seq-stamp liveness: a journal sequence that
        # regresses between probes means the worker came back without
        # its durable state.
        gateway.health_extra = self._health_extra

    def _health_extra(self) -> Dict[str, Any]:
        return {
            "journal_seq": self.journal.last_seq,
            "snapshot_seq": self.last_snapshot_seq,
        }

    # -- GatewayLike surface ------------------------------------------

    @property
    def draining(self) -> bool:
        return self.gateway.draining

    @draining.setter
    def draining(self, value: bool) -> None:
        self.gateway.draining = value

    @property
    def registry(self) -> Any:
        return self.gateway.registry

    def _journaled_request(self, line: str) -> Optional[Dict[str, Any]]:
        """The parsed request to journal before dispatch, or ``None``.

        ``None`` covers the bypass cases: unparseable lines (only bump
        the error counter — counters are diagnostics, not part of the
        durability contract), non-mutating ops, and idempotent retries
        already decided in the dedup window (journaling a retry would
        replay a second, state-mutating copy of the op).
        """
        try:
            request = parse_request(line)
        except ProtocolError:
            return None
        if request.get("op") not in JOURNALED_OPS:
            return None
        rid = request.get("rid")
        if isinstance(rid, str) and self.gateway.dedup_status(rid) != "unknown":
            return None
        return request

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]:
        """Journal (when mutating) then dispatch one request line."""
        request = self._journaled_request(line)
        if request is None:
            return self.gateway.handle_line(line, origin)
        self.journal.append(request)
        routed = self.gateway.handle_line(line, origin)
        self._ops_since_snapshot += 1
        self._maybe_compact()
        return routed

    def handle_frames(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Per-line dispatch of a framed chunk.

        Durability is per request — every mutating line must reach the
        journal before its effects exist — so the durable core cannot
        take the fused chunk lane; it decodes and journals line by
        line, exactly as the per-line transport did.
        """
        routed: List[Routed] = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                routed.extend(self.handle_line(line, origin))
        return routed

    async def handle_frames_async(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Event-loop-safe :meth:`handle_frames` (journals line by
        line via :meth:`handle_line_async`)."""
        routed: List[Routed] = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                routed.extend(await self.handle_line_async(line, origin))
        return routed

    def drain(self) -> List[Routed]:
        """Journal a synthetic drain record, then flush pending batches.

        Flushing decides queued admissions — a mutation — so it must
        hit the journal first.  The record is marked ``synthetic`` so
        recovery replays it via :meth:`AdmissionGateway.drain` (no op
        counter) exactly as it ran here.
        """
        if not any(pipeline.pending for pipeline in self.gateway.registry):
            return []
        self.journal.append({"op": "drain", "synthetic": True})
        routed = self.gateway.drain()
        self._ops_since_snapshot += 1
        self._maybe_compact()
        return routed

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]:
        """Event-loop-safe :meth:`handle_line`: journal I/O (append,
        flush, optional fsync) and compaction run in the default
        executor so the loop keeps scheduling other coroutines.

        Ordering is identical to the sync path — the journal append
        *completes* before the core dispatches, and the server's
        dispatch lock is held across the whole call, so durability and
        bitwise determinism are unchanged.
        """
        request = self._journaled_request(line)
        if request is None:
            return self.gateway.handle_line(line, origin)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.journal.append, request)
        routed = self.gateway.handle_line(line, origin)
        self._ops_since_snapshot += 1
        await loop.run_in_executor(None, self._maybe_compact)
        return routed

    async def drain_async(self) -> List[Routed]:
        """Event-loop-safe :meth:`drain`; same offloading as
        :meth:`handle_line_async`."""
        if not any(pipeline.pending for pipeline in self.gateway.registry):
            return []
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(
            None, self.journal.append, {"op": "drain", "synthetic": True}
        )
        routed = self.gateway.drain()
        self._ops_since_snapshot += 1
        await loop.run_in_executor(None, self._maybe_compact)
        return routed

    # -- Compaction ----------------------------------------------------

    def _maybe_compact(self) -> None:
        if self.snapshot_every and self._ops_since_snapshot >= self.snapshot_every:
            self.compact()

    def compact(self) -> bool:
        """Checkpoint gateway state and reset the journal.

        Skipped (returns ``False``) while any pipeline holds a pending
        admission batch — pipeline snapshots refuse to drop queued
        arrivals, and the journal suffix already covers them.
        """
        if any(pipeline.pending for pipeline in self.gateway.registry):
            return False
        seq = self.journal.last_seq
        doc = gateway_snapshot(self.gateway, seq)
        write_gateway_snapshot(self.snapshot_path, doc, fsync=self.journal.fsync)
        self.journal.reset(next_seq=seq + 1)
        self.last_snapshot_seq = seq
        self._ops_since_snapshot = 0
        return True

    def close(self) -> None:
        self.journal.close()
