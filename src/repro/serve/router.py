"""Shard-aware routing: the pipeline → worker map and its enforcement.

A fleet partitions the pipeline registry across N worker processes.
Three cooperating pieces keep requests landing on the right worker
without a coordination service:

:class:`ShardMap`
    The versioned, consistent pipeline→shard assignment.  Pure data:
    a shard count, a monotonically increasing version, and an explicit
    assignment table for pipelines that have been placed (or migrated)
    by hand; everything else hashes deterministically (CRC-32 of the
    pipeline name, the same stable primitive the journal uses).  Two
    holders of the same wire document always route identically.

:class:`ShardGateway`
    Worker-side enforcement.  Wraps any
    :class:`~repro.serve.gateway.GatewayLike` and bounces requests for
    pipelines the worker does not own with a structured
    ``wrong-shard`` error that *embeds the worker's current map* — a
    client holding a stale map learns the new topology from the bounce
    itself, no resolver round trip.  Bounced requests never reach the
    wrapped gateway, so they cannot pollute the write-ahead journal or
    the idempotency window.

:class:`ShardRouter`
    Client-side resolution with failover.  Routes each call through
    its local map copy, adopts the newer map out of any ``wrong-shard``
    bounce and re-issues the call once, and pins the idempotent ``rid``
    across the re-route so a request that straddles a migration (or a
    worker restart) still executes at most once.

Stale maps are *safe*, only slow: the worst case is one extra round
trip per topology change, because every worker can redirect with
authority over its own shard.  See DESIGN.md §13 for the mapping onto
the exact-``U_j(t)`` invariants.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from .client import GatewayClient, GatewayError
from .gateway import GatewayLike, Routed
from .protocol import ProtocolError, encode, parse_request

__all__ = [
    "SHARD_MAP_FORMAT",
    "ShardMap",
    "ShardGateway",
    "ShardRouter",
    "wrong_shard_response",
]

#: Version tag of the shard-map wire document.
SHARD_MAP_FORMAT = "repro.serve.shard-map/1"


@dataclass(frozen=True)
class ShardMap:
    """Versioned, consistent pipeline → shard assignment.

    Attributes:
        shards: Number of shards (workers) in the fleet (>= 1).
        version: Topology version; strictly increases on every
            reassignment so holders can order two maps.
        assignments: Explicit ``(pipeline, shard)`` placements, sorted
            by name.  Pipelines not listed hash to
            ``crc32(name) % shards``.
    """

    shards: int
    version: int = 1
    assignments: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.version < 1:
            raise ValueError(f"version must be >= 1, got {self.version}")
        normalized = tuple(
            sorted((str(name), int(shard)) for name, shard in self.assignments)
        )
        names = [name for name, _ in normalized]
        if len(set(names)) != len(names):
            raise ValueError("assignments must not repeat a pipeline name")
        for name, shard in normalized:
            if not 0 <= shard < self.shards:
                raise ValueError(
                    f"assignment {name!r} -> {shard} outside [0, {self.shards})"
                )
        object.__setattr__(self, "assignments", normalized)
        object.__setattr__(self, "_table", dict(normalized))

    @classmethod
    def balanced(
        cls, names: Iterable[str], shards: int, version: int = 1
    ) -> "ShardMap":
        """Round-robin the (sorted) names across shards, explicitly.

        Unlike pure hashing, this guarantees every shard owns at least
        one pipeline whenever ``len(names) >= shards`` — the shape the
        fleet chaos gate wants.
        """
        ordered = sorted(str(name) for name in names)
        return cls(
            shards=shards,
            version=version,
            assignments=tuple(
                (name, index % shards) for index, name in enumerate(ordered)
            ),
        )

    def shard_of(self, name: str) -> int:
        """The shard owning ``name`` (explicit placement or hash)."""
        table: Dict[str, int] = self._table  # type: ignore[attr-defined]
        placed = table.get(name)
        if placed is not None:
            return placed
        return zlib.crc32(name.encode("utf-8")) % self.shards

    def assign(self, name: str, shard: int) -> "ShardMap":
        """A new map (version + 1) with ``name`` placed on ``shard``."""
        if not 0 <= shard < self.shards:
            raise ValueError(f"shard {shard} outside [0, {self.shards})")
        kept = tuple(
            (existing, owner)
            for existing, owner in self.assignments
            if existing != name
        )
        return ShardMap(
            shards=self.shards,
            version=self.version + 1,
            assignments=kept + ((str(name), shard),),
        )

    def owned_by(self, shard: int) -> List[str]:
        """Explicitly placed pipelines owned by ``shard``, sorted."""
        return [name for name, owner in self.assignments if owner == shard]

    def to_wire(self) -> Dict[str, Any]:
        """Canonical wire document of this map."""
        return {
            "format": SHARD_MAP_FORMAT,
            "shards": self.shards,
            "version": self.version,
            "assignments": [[name, shard] for name, shard in self.assignments],
        }

    @classmethod
    def from_wire(cls, doc: Any) -> "ShardMap":
        """Parse a :meth:`to_wire` document.

        Raises:
            ProtocolError: On a malformed or wrong-format document.
        """
        if not isinstance(doc, dict) or doc.get("format") != SHARD_MAP_FORMAT:
            raise ProtocolError(
                "bad-shard-map", f"expected a {SHARD_MAP_FORMAT!r} document"
            )
        try:
            return cls(
                shards=int(doc["shards"]),
                version=int(doc["version"]),
                assignments=tuple(
                    (str(name), int(shard)) for name, shard in doc["assignments"]
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError("bad-shard-map", str(exc)) from exc


def wrong_shard_response(
    request: Dict[str, Any], owner: int, shard_map: ShardMap
) -> str:
    """The structured bounce for a request routed to the wrong worker.

    Carries the worker's current map so the client can re-resolve from
    the error itself; ``shard`` names the owner so a thin client can
    redirect without parsing the whole map.
    """
    return encode(
        {
            "id": request.get("id"),
            "op": request.get("op"),
            "ok": False,
            "error": "wrong-shard",
            "detail": (
                f"pipeline {request.get('pipeline')!r} is owned by shard "
                f"{owner} (map version {shard_map.version})"
            ),
            "shard": owner,
            "map": shard_map.to_wire(),
        }
    )


class ShardGateway:
    """Worker-side shard enforcement over any :class:`GatewayLike`.

    Satisfies :class:`GatewayLike` itself, so it stacks on top of the
    durable wrapper unchanged: ``GatewayServer`` → ``ShardGateway`` →
    ``DurableGateway`` → ``AdmissionGateway``.  Requests for pipelines
    another shard owns are answered with :func:`wrong_shard_response`
    *before* the inner gateway sees them — a misrouted mutation can
    reach neither the journal nor the dedup window.

    Ops without a ``pipeline`` operand (``health``, fleet-level
    ``stats``/``drain``) always pass through, as do unparseable lines
    (the inner gateway renders the canonical error for those).

    Args:
        inner: The wrapped gateway core.
        shard: This worker's shard index.
        shard_map: The current topology (replace via
            :meth:`install_map` on rebalance).
    """

    def __init__(self, inner: GatewayLike, shard: int, shard_map: ShardMap) -> None:
        if not 0 <= shard < shard_map.shards:
            raise ValueError(
                f"shard {shard} outside [0, {shard_map.shards})"
            )
        self.inner = inner
        self.shard = shard
        self.shard_map = shard_map
        self.bounced = 0

    # -- GatewayLike surface ------------------------------------------

    @property
    def draining(self) -> bool:
        return self.inner.draining

    @draining.setter
    def draining(self, value: bool) -> None:
        self.inner.draining = value

    def install_map(self, shard_map: ShardMap) -> None:
        """Adopt a newer topology (refuse version rollback)."""
        if shard_map.version < self.shard_map.version:
            raise ValueError(
                f"map version {shard_map.version} rolls back installed "
                f"version {self.shard_map.version}"
            )
        if not 0 <= self.shard < shard_map.shards:
            raise ValueError(
                f"shard {self.shard} outside [0, {shard_map.shards})"
            )
        self.shard_map = shard_map

    def _bounce(self, line: str) -> Optional[str]:
        """The wrong-shard response for ``line``, or ``None`` to pass."""
        try:
            request = parse_request(line)
        except ProtocolError:
            return None  # the inner gateway renders the canonical error
        name = request.get("pipeline")
        if not isinstance(name, str):
            return None
        owner = self.shard_map.shard_of(name)
        if owner == self.shard:
            return None
        self.bounced += 1
        return wrong_shard_response(request, owner, self.shard_map)

    def handle_line(self, line: str, origin: Any = None) -> List[Routed]:
        bounce = self._bounce(line)
        if bounce is not None:
            return [(origin, bounce)]
        return self.inner.handle_line(line, origin)

    def handle_frames(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Per-line dispatch of a framed chunk.

        Every line needs its own ownership check (one chunk can mix
        pipelines), so the shard filter stays line-at-a-time; only the
        unsharded inner core fuses chunks.
        """
        routed: List[Routed] = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                routed.extend(self.handle_line(line, origin))
        return routed

    def drain(self) -> List[Routed]:
        return self.inner.drain()

    async def handle_line_async(self, line: str, origin: Any = None) -> List[Routed]:
        bounce = self._bounce(line)  # pure compute, loop-safe
        if bounce is not None:
            return [(origin, bounce)]
        return await self.inner.handle_line_async(line, origin)

    async def handle_frames_async(
        self, frames: Sequence[bytes], origin: Any = None
    ) -> List[Routed]:
        """Event-loop-safe :meth:`handle_frames` (per-line, see there)."""
        routed: List[Routed] = []
        for raw in frames:
            line = raw.decode("utf-8", errors="replace").strip()
            if line:
                routed.extend(await self.handle_line_async(line, origin))
        return routed

    async def drain_async(self) -> List[Routed]:
        return await self.inner.drain_async()


class ShardRouter:
    """Client-side routing with stale-map re-resolution.

    Holds one :class:`GatewayClient` per shard (built lazily via the
    ``connect`` factory, rebuilt after transport failures by whatever
    retry layer wraps the clients) and a local :class:`ShardMap` copy.
    A ``wrong-shard`` bounce updates the local map from the embedded
    document and re-issues the call once to the indicated owner; the
    idempotency ``rid`` is pinned across the re-route, so a call that
    lands mid-migration still executes at most once.

    Attributes:
        stale_resolves: Calls that needed a bounce-and-re-route.
    """

    def __init__(
        self,
        shard_map: ShardMap,
        connect: Callable[[int], GatewayClient],
    ) -> None:
        self.shard_map = shard_map
        self._connect = connect
        self._clients: Dict[int, GatewayClient] = {}
        self.stale_resolves = 0

    def client(self, shard: int) -> GatewayClient:
        """The (lazily connected) client for ``shard``."""
        client = self._clients.get(shard)
        if client is None:
            client = self._connect(shard)
            self._clients[shard] = client
        return client

    def drop_client(self, shard: int) -> None:
        """Forget a shard's client (reconnect on next use)."""
        client = self._clients.pop(shard, None)
        if client is not None:
            try:
                client.close()
            except Exception:
                pass

    def adopt_map(self, doc: Any) -> ShardMap:
        """Adopt the newer of the local map and a wire document."""
        offered = ShardMap.from_wire(doc)
        if offered.version > self.shard_map.version:
            self.shard_map = offered
        return self.shard_map

    def call(self, op: str, pipeline: str, **operands: Any) -> Dict[str, Any]:
        """Issue one pipeline-targeted call, re-routing on a stale map.

        Raises:
            GatewayError: Any non-``wrong-shard`` error answer, or a
                ``wrong-shard`` bounce that persists after re-resolving
                (a worker whose map disagrees with its own ownership —
                a topology bug, not a staleness race).
        """
        shard = self.shard_map.shard_of(pipeline)
        try:
            return self.client(shard).call(op, pipeline=pipeline, **operands)
        except GatewayError as exc:
            if exc.code != "wrong-shard" or exc.response is None:
                raise
            self.stale_resolves += 1
            self.adopt_map(exc.response.get("map"))
            owner = self.shard_map.shard_of(pipeline)
            if owner == shard:
                raise
            return self.client(owner).call(op, pipeline=pipeline, **operands)

    def close(self) -> None:
        for shard in list(self._clients):
            self.drop_client(shard)


def partition_names(names: Sequence[str], shard_map: ShardMap) -> Dict[int, List[str]]:
    """Group ``names`` by owning shard (diagnostics helper)."""
    grouped: Dict[int, List[str]] = {}
    for name in names:
        grouped.setdefault(shard_map.shard_of(name), []).append(name)
    return {shard: sorted(owned) for shard, owned in sorted(grouped.items())}
