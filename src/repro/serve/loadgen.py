"""Deterministic load generator for the admission gateway.

``python -m repro.serve.loadgen --scenario webserver --seed 0`` replays
a seeded aperiodic arrival trace *closed-loop* against a gateway — the
full pipeline simulation executes admitted requests and feeds every
departure/idle notification back through the protocol — and emits a
byte-stable JSON report (throughput, latency, rejects, gateway
counters).  The same seed always produces the same bytes: all time is
virtual, every random draw comes from a seeded generator, and the
report contains nothing environment-dependent.

Scenarios:

``webserver``
    The intro's three-tier request mix at its default rate (inside the
    feasible region) — zero deadline misses expected.
``overload``
    The same mix at four times the rate with Section-5 importance
    shedding — heavy rejects, still zero misses among surviving tasks.
``burst``
    In-region traffic plus :class:`repro.faults.schedule.ArrivalBurst`
    flash crowds — the region test sheds the overflow at the ingress.
``chaos``
    In-region traffic while bookkeeping notifications are dropped
    (:class:`repro.faults.schedule.DropNotification` windows make the
    client swallow depart/idle calls) and periodic ``resync``
    operations repair the gateway from the ground-truth frontier.

Every report also embeds two standing self-checks: a
batching-equivalence replay (the trace re-decided open-loop at batch
sizes 1/4/32 and sequentially must agree decision-for-decision) and a
snapshot round-trip (snapshot → restore → audit → re-snapshot must be
clean and byte-stable).
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..apps.webserver import TIERS, WebServerModel
from ..core.admission import PipelineAdmissionController
from ..core.task import PipelineTask, make_task
from ..faults.schedule import ArrivalBurst, DropNotification
from ..locking import ResourceSpec, compute_betas
from ..sim.pipeline import PipelineSimulation
from ..sim.stage import Segment
from .client import GatewayClient, GatewayControllerProxy, InProcessTransport, TcpTransport
from .gateway import AdmissionGateway, GatewayServer, install_event_loop
from .protocol import json_safe
from .snapshot import controller_snapshot, restore_controller, verify_restored

__all__ = [
    "SCENARIOS",
    "REPORT_FORMAT",
    "BLOCKING_COMPARE_FORMAT",
    "run_scenario",
    "compare_blocking",
    "render_report",
    "main",
]

#: Version tag of the loadgen report document.
REPORT_FORMAT = "repro.serve.loadgen-report/1"

#: Version tag of the online-vs-static blocking comparison report.
BLOCKING_COMPARE_FORMAT = "repro.serve.blocking-compare-report/1"

#: Batch sizes exercised by the standing batching-equivalence check.
EQUIVALENCE_BATCH_SIZES = (1, 4, 32)

#: The pipeline name every scenario registers.
PIPELINE_NAME = "web"


@dataclass(frozen=True)
class Scenario:
    """One reproducible load shape.

    Attributes:
        name: Scenario name (the CLI ``--scenario`` value).
        summary: One-line description for ``--list``.
        arrival_rate: Request rate of the underlying web-server mix.
        shedding: Register the pipeline with importance shedding.
        bursts: Extra flash-crowd arrivals (fractions of the nominal
            trace span, so they scale with ``--requests``).
        drop_windows: Notification-drop windows (fractions of the
            nominal span) applied at the *client* side.
        resyncs: Number of periodic ground-truth resyncs.
    """

    name: str
    summary: str
    arrival_rate: float = 100.0
    shedding: bool = False
    bursts: Tuple[Tuple[float, int], ...] = ()
    drop_windows: Tuple[Tuple[str, float, float], ...] = ()
    resyncs: int = 0


SCENARIOS: Tuple[Scenario, ...] = (
    Scenario(
        name="webserver",
        summary="three-tier request mix inside the feasible region",
    ),
    Scenario(
        name="overload",
        summary="4x overload with Section-5 importance shedding",
        arrival_rate=400.0,
        shedding=True,
    ),
    Scenario(
        name="burst",
        summary="in-region traffic plus flash-crowd arrival bursts",
        bursts=((0.3, 40), (0.6, 60)),
    ),
    Scenario(
        name="chaos",
        summary="dropped bookkeeping notifications repaired by resync",
        drop_windows=(("departure", 0.2, 0.4), ("idle", 0.5, 0.6)),
        resyncs=6,
    ),
)


def _scenario(name: str) -> Scenario:
    for scenario in SCENARIOS:
        if scenario.name == name:
            return scenario
    known = ", ".join(s.name for s in SCENARIOS)
    raise ValueError(f"unknown scenario {name!r}; choose one of {known}")


# ----------------------------------------------------------------------
# Trace construction
# ----------------------------------------------------------------------


def build_trace(
    scenario: Scenario, seed: int, requests: int
) -> Tuple[List[PipelineTask], float, float]:
    """The scenario's full arrival trace, its span, and the run horizon.

    Returns:
        ``(tasks, span, horizon)`` — tasks sorted by arrival (stable on
        ties), ``span`` the nominal trace duration used to place
        faults, ``horizon`` late enough for every deadline to settle.
    """
    model = WebServerModel(arrival_rate=scenario.arrival_rate)
    trace = list(model.request_trace(requests, seed))
    span = requests / scenario.arrival_rate
    if scenario.bursts:
        burst_rng = random.Random(seed + 1_000_003)
        next_id = requests
        mean_costs = (0.002, 0.006, 0.012)
        for fraction, count in scenario.bursts:
            burst = ArrivalBurst(
                time=round(fraction * span, 6),
                count=count,
                deadline=1.0,
                mean_costs=mean_costs,
            )
            for _ in range(burst.count):
                costs = [
                    burst_rng.expovariate(1.0 / c) if c > 0 else 0.0
                    for c in burst.mean_costs
                ]
                trace.append(
                    make_task(
                        arrival_time=burst.time,
                        deadline=burst.deadline,
                        computation_times=costs,
                        importance=burst.importance,
                        task_id=next_id,
                    )
                )
                next_id += 1
        trace.sort(key=lambda task: (task.arrival_time, task.task_id))
    last_settled = max(
        (task.arrival_time + task.deadline for task in trace), default=0.0
    )
    horizon = last_settled + 1.0
    return trace, span, horizon


# ----------------------------------------------------------------------
# Closed-loop run
# ----------------------------------------------------------------------


def _policy_doc(scenario: Scenario) -> Dict[str, Any]:
    return {"num_stages": len(TIERS), "shedding": scenario.shedding}


def _install_chaos(
    scenario: Scenario,
    span: float,
    sim: PipelineSimulation,
    proxy: GatewayControllerProxy,
    resync_reports: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Schedule drop windows and resyncs on the simulation clock."""
    windows: List[Dict[str, Any]] = []
    for kind, start_fraction, end_fraction in scenario.drop_windows:
        fault = DropNotification(
            kind=kind,
            start=round(start_fraction * span, 6),
            end=round(end_fraction * span, 6),
        )
        attr = "drop_departures" if kind == "departure" else "drop_idles"

        def _set(flag_value: bool, name: str = attr) -> None:
            setattr(proxy, name, flag_value)

        sim.sim.at(fault.start, _set, True)
        sim.sim.at(fault.end, _set, False)
        windows.append({"kind": kind, "start": fault.start, "end": fault.end})

    def _resync() -> None:
        response = proxy.resync(sim.sim.now, sim.frontier())
        resync_reports.append(
            {"now": round(sim.sim.now, 6), "report": response["report"]}
        )

    for k in range(1, scenario.resyncs + 1):
        sim.sim.at(round(span * k / scenario.resyncs, 6), _resync)
    return windows


class _TcpGatewayThread:
    """A gateway server on a background asyncio thread (TCP transport).

    Args:
        gateway: Gateway instance to serve (fresh
            :class:`AdmissionGateway` when omitted).
        start_timeout: Seconds to wait for the server to come up.
        stop_timeout: Seconds to wait for the thread on shutdown.
    """

    def __init__(
        self,
        gateway: Optional[Any] = None,
        start_timeout: float = 30.0,
        stop_timeout: float = 30.0,
    ) -> None:
        self._gateway = gateway
        self._start_timeout = start_timeout
        self._stop_timeout = stop_timeout
        self._ready = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop: Optional[asyncio.Event] = None
        self._thread: Optional[threading.Thread] = None
        self.address: Tuple[str, int] = ("", 0)

    def __enter__(self) -> "_TcpGatewayThread":
        self._thread = threading.Thread(
            target=lambda: asyncio.run(self._main()), daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=self._start_timeout):
            raise RuntimeError(
                f"gateway server failed to start within {self._start_timeout}s"
            )
        return self

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        server = GatewayServer(gateway=self._gateway)
        await server.start()
        self.address = server.address
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await server.shutdown()

    def __exit__(self, *exc_info: Any) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=self._stop_timeout)


def run_scenario(
    name: str,
    seed: int,
    requests: int = 1000,
    transport: str = "inproc",
    timeout: float = 30.0,
) -> Dict[str, Any]:
    """Run one scenario closed-loop and build the report payload.

    Args:
        name / seed / requests: Scenario selection and trace shape.
        transport: ``"inproc"`` or ``"tcp"``.
        timeout: Upper bound (seconds) on any single TCP wait — server
            start/stop, connect, and per-read.
    """
    scenario = _scenario(name)
    if transport == "inproc":
        client = GatewayClient(InProcessTransport(AdmissionGateway()))
        payload = _run_with_client(scenario, seed, requests, transport, client)
        client.close()
        return payload
    if transport == "tcp":
        with _TcpGatewayThread(
            start_timeout=timeout, stop_timeout=timeout
        ) as server:
            client = GatewayClient(
                TcpTransport(
                    *server.address,
                    connect_timeout=timeout,
                    read_timeout=timeout,
                )
            )
            try:
                return _run_with_client(scenario, seed, requests, transport, client)
            finally:
                client.close()
    raise ValueError(f"unknown transport {transport!r}; choose inproc or tcp")


def _run_with_client(
    scenario: Scenario,
    seed: int,
    requests: int,
    transport: str,
    client: GatewayClient,
) -> Dict[str, Any]:
    trace, span, horizon = build_trace(scenario, seed, requests)
    client.register(PIPELINE_NAME, _policy_doc(scenario))
    proxy = GatewayControllerProxy(client, PIPELINE_NAME, num_stages=len(TIERS))
    sim = PipelineSimulation(
        num_stages=len(TIERS),
        controller=proxy,
        max_admission_wait=0.0,
        admit_with_shedding=scenario.shedding,
    )
    resync_reports: List[Dict[str, Any]] = []
    windows = _install_chaos(scenario, span, sim, proxy, resync_reports)

    # Snapshot mid-run (half the trace span) so the round-trip check
    # exercises a controller with live admitted records, not the
    # drained end-of-run state.
    mid_run: Dict[str, Any] = {}

    def _take_mid_snapshot() -> None:
        mid_run["snapshot"] = client.call("snapshot", pipeline=PIPELINE_NAME)[
            "snapshot"
        ]

    sim.sim.at(round(span * 0.5, 6), _take_mid_snapshot)

    sim.offer_stream(iter(trace))
    report = sim.run(horizon, warmup=0.0)

    stats_response = client.stats(PIPELINE_NAME)
    snapshot_doc = mid_run["snapshot"]

    missed = sum(
        1
        for record in report.tasks
        if record.admitted and not record.shed and record.missed
    )
    unfinished = sum(
        1
        for record in report.tasks
        if record.admitted and not record.shed and record.completed_at is None
    )
    payload: Dict[str, Any] = {
        "format": REPORT_FORMAT,
        "scenario": scenario.name,
        "seed": seed,
        "requests": requests,
        "transport": transport,
        "trace": {
            "tasks": len(trace),
            "span": round(span, 6),
            "horizon": round(horizon, 6),
        },
        "traffic": {
            "offered": report.generated,
            "admitted": report.admitted,
            "rejected": report.rejected,
            "shed": report.shed_count,
            "completed": report.completed,
            "missed": missed,
            "unfinished": unfinished,
            "accept_ratio": round(report.accept_ratio, 6),
            "miss_ratio": round(report.miss_ratio(), 6),
        },
        "latency": {
            "mean": round(report.mean_response_time(), 6),
            "p50": round(report.response_time_percentile(50.0), 6),
            "p99": round(report.response_time_percentile(99.0), 6),
            "max": round(max(report.response_times(), default=0.0), 6),
        },
        "gateway": {
            "ops": stats_response["ops"],
            "pipeline": stats_response["stats"][PIPELINE_NAME],
        },
        "batching": batching_equivalence(trace),
        "snapshot": snapshot_roundtrip(snapshot_doc),
    }
    if scenario.drop_windows or scenario.resyncs:
        payload["chaos"] = {"drop_windows": windows, "resyncs": resync_reports}
    return payload


# ----------------------------------------------------------------------
# Standing self-checks
# ----------------------------------------------------------------------


def batching_equivalence(
    trace: Sequence[PipelineTask],
    batch_sizes: Sequence[int] = EQUIVALENCE_BATCH_SIZES,
) -> Dict[str, Any]:
    """Replay the trace open-loop at several batch sizes and compare.

    Each replay registers a fresh in-process pipeline, submits every
    arrival, drains, and collects the decision sequence.  Sequential
    (unbatched) processing is the reference; every batch size must
    match it decision-for-decision, including the reported region
    value byte-for-byte.
    """
    outcomes: Dict[Optional[int], List[Tuple[bool, float]]] = {}
    for max_batch in (None, *batch_sizes):
        client = GatewayClient(InProcessTransport(AdmissionGateway()))
        policy: Dict[str, Any] = {"num_stages": len(TIERS), "max_batch": max_batch}
        client.register("replay", policy)
        request_ids = [client.submit_admit("replay", task) for task in trace]
        client.drain()
        decisions: List[Tuple[bool, float]] = []
        for request_id in request_ids:
            response = client.collect(request_id, wait=False)
            assert response is not None, "drain must answer every admit"
            decisions.append((response["admitted"], response["region_value"]))
        outcomes[max_batch] = decisions
        client.close()
    reference = outcomes[None]
    equivalent = all(outcomes[size] == reference for size in batch_sizes)
    return {
        "batch_sizes": list(batch_sizes),
        "checked": len(trace),
        "admitted_sequential": sum(1 for admitted, _ in reference if admitted),
        "equivalent": equivalent,
    }


def snapshot_roundtrip(pipeline_snapshot: Dict[str, Any]) -> Dict[str, Any]:
    """Restore a pipeline snapshot locally, audit it, re-snapshot it.

    The round trip must produce zero auditor violations and a
    byte-identical controller document (snapshot → restore →
    snapshot is a fixed point).
    """
    controller_doc = pipeline_snapshot["controller"]
    restored = restore_controller(controller_doc)
    check_at = pipeline_snapshot.get("clock")
    violations = verify_restored(restored, 0.0 if check_at is None else check_at)
    first = json.dumps(json_safe(controller_doc), sort_keys=True)
    second = json.dumps(json_safe(controller_snapshot(restored)), sort_keys=True)
    return {
        "admitted_records": len(controller_doc["admitted"]),
        "violations": len(violations),
        "stable": first == second,
    }


# ----------------------------------------------------------------------
# Online vs. static blocking bounds (--compare-blocking)
# ----------------------------------------------------------------------

#: Contention scenario shape: a short pipeline with a tiny lock pool so
#: critical sections actually collide, tight/loose deadline classes so
#: the worst-case pairing (long section of a loose task blocking a
#: tight-deadline victim) dominates the static bound.
CONTENTION_STAGES = 2
CONTENTION_RESOURCES = ("mutex-a", "mutex-b")
CONTENTION_ALPHA = 0.9
CONTENTION_RATE = 40.0


def build_contention_trace(
    seed: int, requests: int
) -> Tuple[List[PipelineTask], float, float]:
    """A seeded arrival trace where tasks contend on shared resources.

    Returns ``(tasks, span, horizon)`` like :func:`build_trace`.  About
    60% of tasks declare one critical section on a two-lock pool; the
    section runs inside the task's own stage cost, so the simulated
    execution (PCP segments) matches the declared worst case exactly.
    """
    rng = random.Random(seed)
    tasks: List[PipelineTask] = []
    now = 0.0
    for task_id in range(requests):
        now += rng.expovariate(CONTENTION_RATE)
        costs = tuple(
            rng.uniform(0.01, 0.06) for _ in range(CONTENTION_STAGES)
        )
        if rng.random() < 0.5:
            deadline = rng.uniform(0.25, 0.5)  # tight class
        else:
            deadline = rng.uniform(1.5, 3.0)  # loose class
        resources: Tuple[ResourceSpec, ...] = ()
        if rng.random() < 0.6:
            stage = rng.randrange(CONTENTION_STAGES)
            resources = (
                ResourceSpec(
                    stage=stage,
                    resource=CONTENTION_RESOURCES[
                        rng.randrange(len(CONTENTION_RESOURCES))
                    ],
                    # The section fits inside the stage's own cost, so
                    # the declared bound is exactly what executes.
                    max_length=costs[stage] * rng.uniform(0.3, 0.8),
                ),
            )
        tasks.append(
            make_task(
                arrival_time=round(now, 6),
                deadline=round(deadline, 6),
                computation_times=tuple(round(c, 6) for c in costs),
                resources=tuple(
                    ResourceSpec(r.stage, r.resource, round(r.max_length, 6))
                    for r in resources
                ),
                task_id=task_id,
            )
        )
    span = tasks[-1].arrival_time if tasks else 0.0
    last_settled = max(
        (task.arrival_time + task.deadline for task in tasks), default=0.0
    )
    return tasks, span, last_settled + 1.0


def _contention_segments(
    task: PipelineTask, stage_index: int
) -> Optional[List[Segment]]:
    """Turn a task's declared critical sections into execution segments."""
    sections = [
        spec
        for spec in task.resources
        if spec.stage == stage_index and spec.max_length > 0
    ]
    if not sections:
        return None
    cost = task.computation_times[stage_index]
    open_time = cost - sum(spec.max_length for spec in sections)
    segments: List[Segment] = []
    if open_time > 0:
        segments.append(Segment(open_time))
    for spec in sections:
        segments.append(Segment(spec.max_length, lock=spec.resource))
    return segments


def _run_contention(
    trace: Sequence[PipelineTask],
    horizon: float,
    controller: PipelineAdmissionController,
) -> Dict[str, Any]:
    """Simulate the contention trace closed-loop under one controller."""
    sim = PipelineSimulation(
        num_stages=CONTENTION_STAGES,
        controller=controller,
        max_admission_wait=0.0,
        segment_builder=_contention_segments,
    )
    # Observe real PCP blocking as jobs finish: evidence the simulated
    # contention actually exercised the critical sections the admission
    # bound accounts for.
    blocked_jobs = 0
    max_blocking = 0.0
    forward = sim._job_complete

    def observe(job: Any) -> None:
        nonlocal blocked_jobs, max_blocking
        if job.blocking_time > 0:
            blocked_jobs += 1
            if job.blocking_time > max_blocking:
                max_blocking = job.blocking_time
        forward(job)

    for stage in sim.stages:
        stage.on_job_complete = observe
    sim.offer_stream(iter(trace))
    report = sim.run(horizon, warmup=0.0)
    survivors = [r for r in report.tasks if r.admitted and not r.shed]
    return {
        "offered": report.generated,
        "admitted": report.admitted,
        "rejected": report.rejected,
        "accept_ratio": round(report.accept_ratio, 6),
        "completed": report.completed,
        "missed": sum(1 for r in survivors if r.missed),
        "unfinished": sum(1 for r in survivors if r.completed_at is None),
        "blocked_jobs": blocked_jobs,
        "max_blocking_observed": round(max_blocking, 6),
    }


def compare_blocking(seed: int, requests: int = 400) -> Dict[str, Any]:
    """Admit the same contention trace under online vs. static bounds.

    The *static* controller uses the classical worst-case blocking
    vector: ``compute_betas`` over the **whole anticipated population**
    (every task that will ever arrive), fixed for the run.  The
    *online* controller derives ``beta_j`` from the currently admitted
    set, so the budget only shrinks while worst-case pairings actually
    coexist.  Both execute the admitted tasks through the PCP pipeline
    simulation; the report compares admit rates and deadline misses.
    """
    trace, span, horizon = build_contention_trace(seed, requests)
    static_betas = compute_betas(
        ((task.task_id, task.deadline, task.resources) for task in trace),
        CONTENTION_STAGES,
    )
    static = _run_contention(
        trace,
        horizon,
        PipelineAdmissionController(
            CONTENTION_STAGES, alpha=CONTENTION_ALPHA, betas=static_betas
        ),
    )
    online_controller = PipelineAdmissionController(
        CONTENTION_STAGES, alpha=CONTENTION_ALPHA, locking=True
    )
    online = _run_contention(trace, horizon, online_controller)
    return {
        "format": BLOCKING_COMPARE_FORMAT,
        "seed": seed,
        "requests": requests,
        "num_stages": CONTENTION_STAGES,
        "alpha": CONTENTION_ALPHA,
        "trace": {
            "tasks": len(trace),
            "with_resources": sum(1 for task in trace if task.resources),
            "span": round(span, 6),
            "horizon": round(horizon, 6),
        },
        "static_betas": list(static_betas),
        "static": static,
        "online": {
            **online,
            "final_betas": list(online_controller.betas),
            "final_budget": online_controller.budget,
        },
        "advantage": {
            "extra_admitted": online["admitted"] - static["admitted"],
            "online_not_worse": online["admitted"] >= static["admitted"],
        },
    }


def _compare_gate_failures(payload: Dict[str, Any]) -> List[str]:
    """Acceptance gates of the blocking comparison report."""
    failures: List[str] = []
    if not payload["advantage"]["online_not_worse"]:
        failures.append(
            f"online bounds admitted {payload['online']['admitted']} < "
            f"static {payload['static']['admitted']}"
        )
    for side in ("static", "online"):
        if payload[side]["missed"]:
            failures.append(f"{payload[side]['missed']} deadline misses ({side})")
        if payload[side]["unfinished"]:
            failures.append(f"{payload[side]['unfinished']} unfinished tasks ({side})")
    if payload["trace"]["with_resources"] == 0:
        failures.append("trace carried no resource-bearing tasks")
    return failures


def _compare_blocking_main(args: argparse.Namespace) -> int:
    """``--compare-blocking``: online vs. static blocking-bound gate."""
    payload = compare_blocking(seed=args.seed, requests=args.requests)
    rendered = render_report(payload)
    failures = _compare_gate_failures(payload)
    if args.selftest:
        replay = render_report(
            compare_blocking(seed=args.seed, requests=args.requests)
        )
        if replay != rendered:
            print("selftest FAILED: replay produced different bytes", file=sys.stderr)
            return 1
        if failures:
            print(f"selftest FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        print(
            f"selftest ok: compare-blocking seed={args.seed} "
            f"static={payload['static']['admitted']} "
            f"online={payload['online']['admitted']} "
            f"extra={payload['advantage']['extra_admitted']} "
            f"missed=0 bytes={len(rendered)}"
        )
    else:
        sys.stdout.write(rendered)
        if failures:
            print(f"gate FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    return 0


# ----------------------------------------------------------------------
# Rendering and CLI
# ----------------------------------------------------------------------


def render_report(payload: Dict[str, Any]) -> str:
    """Canonical byte-stable JSON rendering of a report payload."""
    return json.dumps(json_safe(payload), indent=2, sort_keys=True) + "\n"


def _gate_failures(payload: Dict[str, Any]) -> List[str]:
    """The selftest acceptance gates a report must clear."""
    failures = []
    if payload["traffic"]["missed"] != 0:
        failures.append(f"{payload['traffic']['missed']} deadline misses")
    if payload["traffic"]["unfinished"] != 0:
        failures.append(f"{payload['traffic']['unfinished']} unfinished tasks")
    if not payload["batching"]["equivalent"]:
        failures.append("batched decisions diverged from sequential")
    if payload["snapshot"]["violations"] != 0:
        failures.append("snapshot restore failed the audit")
    if not payload["snapshot"]["stable"]:
        failures.append("snapshot round trip was not byte-stable")
    return failures


def _chaos_crash_main(args: argparse.Namespace) -> int:
    """``--chaos-crash``: crash/recovery durability gate (see recovery.py)."""
    from .recovery import crash_chaos_gate_failures, run_crash_chaos

    payload = run_crash_chaos(seed=args.seed, cycles=args.cycles)
    rendered = render_report(payload)
    if args.selftest:
        replay = render_report(run_crash_chaos(seed=args.seed, cycles=args.cycles))
        if replay != rendered:
            print("selftest FAILED: replay produced different bytes", file=sys.stderr)
            return 1
        failures = crash_chaos_gate_failures(
            payload, min_recoveries=min(20, args.cycles)
        )
        if failures:
            print(f"selftest FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        admissions = payload["admissions"]
        print(
            f"selftest ok: chaos-crash seed={args.seed} "
            f"recoveries={payload['recoveries']['count']} "
            f"acked={admissions['acked_admitted']} "
            f"lost={admissions['lost']} duplicated={admissions['duplicated']} "
            f"bytes={len(rendered)}"
        )
    else:
        failures = crash_chaos_gate_failures(
            payload, min_recoveries=min(20, args.cycles)
        )
        sys.stdout.write(rendered)
        if failures:
            print(f"gate FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    return 0


def _chaos_fleet_main(args: argparse.Namespace) -> int:
    """``--chaos-fleet``: shard-fleet failover gate (see fleetchaos.py)."""
    from .fleetchaos import fleet_chaos_gate_failures, run_fleet_chaos

    payload = run_fleet_chaos(
        seed=args.seed, cycles=args.cycles, workers=args.workers
    )
    rendered = render_report(payload)
    min_recoveries = min(10, args.cycles)
    if args.selftest:
        replay = render_report(
            run_fleet_chaos(seed=args.seed, cycles=args.cycles, workers=args.workers)
        )
        if replay != rendered:
            print("selftest FAILED: replay produced different bytes", file=sys.stderr)
            return 1
        failures = fleet_chaos_gate_failures(payload, min_recoveries=min_recoveries)
        if failures:
            print(f"selftest FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        admissions = payload["admissions"]
        equivalence = payload["equivalence"]
        print(
            f"selftest ok: chaos-fleet seed={args.seed} workers={args.workers} "
            f"recoveries={payload['recoveries']['count']} "
            f"acked={admissions['acked_admitted']} "
            f"lost={admissions['lost']} duplicated={admissions['duplicated']} "
            f"fingerprint_matches={equivalence['fingerprint_matches']} "
            f"bytes={len(rendered)}"
        )
    else:
        failures = fleet_chaos_gate_failures(payload, min_recoveries=min_recoveries)
        sys.stdout.write(rendered)
        if failures:
            print(f"gate FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    return 0


def _chaos_degradation_main(args: argparse.Namespace) -> int:
    """``--chaos-degradation``: capacity-rescale + sacrifice gate (degchaos.py)."""
    from .degchaos import degradation_chaos_gate_failures, run_degradation_chaos

    payload = run_degradation_chaos(seed=args.seed, cycles=args.cycles)
    rendered = render_report(payload)
    min_recoveries = min(12, args.cycles)
    if args.selftest:
        replay = render_report(
            run_degradation_chaos(seed=args.seed, cycles=args.cycles)
        )
        if replay != rendered:
            print("selftest FAILED: replay produced different bytes", file=sys.stderr)
            return 1
        failures = degradation_chaos_gate_failures(
            payload, min_recoveries=min_recoveries
        )
        if failures:
            print(f"selftest FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        admissions = payload["admissions"]
        degradation = payload["degradation"]
        print(
            f"selftest ok: chaos-degradation seed={args.seed} "
            f"recoveries={payload['recoveries']['count']} "
            f"rescales={degradation['rescales']} "
            f"sacrificed={degradation['sacrificed']} "
            f"region_violations={degradation['region_violations']} "
            f"lost={admissions['lost']} duplicated={admissions['duplicated']} "
            f"bytes={len(rendered)}"
        )
    else:
        failures = degradation_chaos_gate_failures(
            payload, min_recoveries=min_recoveries
        )
        sys.stdout.write(rendered)
        if failures:
            print(f"gate FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Replay a seeded trace against the admission gateway.",
    )
    parser.add_argument(
        "--scenario", choices=[s.name for s in SCENARIOS], help="load shape to replay"
    )
    parser.add_argument("--seed", type=int, default=0, help="trace seed")
    parser.add_argument(
        "--requests", type=int, default=1000, help="base trace length"
    )
    parser.add_argument(
        "--transport",
        choices=["inproc", "tcp"],
        default="inproc",
        help="drive the gateway in-process or over a TCP socket",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="upper bound (seconds) on any single TCP wait",
    )
    parser.add_argument(
        "--loop",
        choices=["auto", "stdlib", "uvloop"],
        default=os.environ.get("REPRO_SERVE_LOOP", "auto"),
        help="event-loop backend for the TCP server thread "
        "(default from $REPRO_SERVE_LOOP, else auto); reports and "
        "gate results are identical on every backend",
    )
    parser.add_argument("--out", help="also write the report to this path")
    parser.add_argument(
        "--selftest",
        action="store_true",
        help="run twice, assert byte-identical reports and zero misses",
    )
    parser.add_argument(
        "--chaos-crash",
        action="store_true",
        help="run the crash/recovery chaos harness instead of a scenario",
    )
    parser.add_argument(
        "--chaos-fleet",
        action="store_true",
        help="run the shard-fleet failover chaos harness instead of a scenario",
    )
    parser.add_argument(
        "--chaos-degradation",
        action="store_true",
        help="run the capacity-degradation chaos harness instead of a scenario",
    )
    parser.add_argument(
        "--compare-blocking",
        action="store_true",
        help="compare online PCP blocking bounds against the static "
        "worst-case vector on a seeded contention trace",
    )
    parser.add_argument(
        "--cycles",
        type=int,
        default=24,
        help="crash/recover cycles for --chaos-crash / --chaos-fleet / "
        "--chaos-degradation",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=3,
        help="fleet size for --chaos-fleet",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    args = parser.parse_args(argv)

    try:
        install_event_loop(args.loop)
    except (RuntimeError, ValueError) as exc:
        parser.error(str(exc))

    if args.list:
        for scenario in SCENARIOS:
            print(f"{scenario.name:12s} {scenario.summary}")
        return 0
    if args.chaos_crash:
        return _chaos_crash_main(args)
    if args.chaos_fleet:
        return _chaos_fleet_main(args)
    if args.chaos_degradation:
        return _chaos_degradation_main(args)
    if args.compare_blocking:
        return _compare_blocking_main(args)
    if args.scenario is None:
        parser.error("--scenario is required (or use --list)")

    payload = run_scenario(
        args.scenario, args.seed, args.requests, args.transport, args.timeout
    )
    rendered = render_report(payload)

    if args.selftest:
        replay = render_report(
            run_scenario(
                args.scenario, args.seed, args.requests, args.transport, args.timeout
            )
        )
        if replay != rendered:
            print("selftest FAILED: replay produced different bytes", file=sys.stderr)
            return 1
        failures = _gate_failures(payload)
        if failures:
            print(f"selftest FAILED: {'; '.join(failures)}", file=sys.stderr)
            return 1
        traffic = payload["traffic"]
        print(
            f"selftest ok: scenario={args.scenario} seed={args.seed} "
            f"offered={traffic['offered']} admitted={traffic['admitted']} "
            f"missed={traffic['missed']} bytes={len(rendered)}"
        )
    else:
        sys.stdout.write(rendered)

    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    return 0


if __name__ == "__main__":
    sys.exit(main())
