"""Online degradation manager: capacity rescale + region-repairing sacrifice.

The paper's admission test assumes constant stage capacity; a serving
deployment does not get that luxury.  This module closes the loop when
a stage degrades at runtime:

1. **Signal ingestion** — two paths feed the same confirmed-capacity
   estimate: the explicit ``set_capacity`` wire op (an operator or an
   external monitor declares the level authoritatively) and the
   ``report`` op, whose raw overrun/slowdown observations pass through
   the :class:`~repro.faults.degradation.CapacityEstimator` hysteresis
   filter so transient blips never move the estimate.

2. **Transactional rescale + repair** — a confirmed capacity change
   re-charges the whole admitted set against the new capacity vector
   (:meth:`~repro.core.admission.PipelineAdmissionController.rescale_stage_capacity`,
   bitwise identical to a fresh controller at the new capacities) and
   then re-runs the Eq. 12/15 region test over the live admitted set.
   If the region no longer holds, tasks are *sacrificed* in brownout
   order — ascending importance, admission sequence as the
   deterministic tie-break — until it does
   (:meth:`~repro.core.admission.PipelineAdmissionController.repair_region`).
   On a locking pipeline each sacrifice also releases the victim's
   critical sections, so the ``beta_j`` blocking budget is re-previewed
   before the repair plan is accepted.

3. **Replayable decisions** — every sacrifice is recorded in a bounded
   ledger, and the whole manager state (estimator + ledger) rides in
   the pipeline snapshot.  Both wire ops are journaled, and the manager
   is pure (no wall clock, no randomness), so crash-recovery replay
   reproduces the same rescales and the same sacrifices bitwise.

Capacity *restoration* is symmetric: a confirmed restore re-charges the
admitted set downward (never infeasible — charges only shrink), so no
sacrifice can result from good news.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional

from ..core.admission import PipelineAdmissionController
from ..faults.degradation import CapacityEstimator, CapacityHysteresis

__all__ = [
    "OBSERVATION_KINDS",
    "SACRIFICE_LEDGER_LIMIT",
    "DegradationManager",
    "hysteresis_from_wire",
    "hysteresis_to_wire",
]

#: Fault-report kinds the ``report`` op accepts.  ``overrun`` carries
#: the observed/expected service-time ratio (>= 1 means slower than
#: nominal), ``slowdown`` carries the observed fraction of nominal
#: throughput directly, ``ok`` is a healthy probe (capacity 1.0).
OBSERVATION_KINDS = ("overrun", "slowdown", "ok")

#: Most recent sacrifice decisions kept in the replayable ledger.  The
#: ledger is diagnostics, not bookkeeping — sacrifices take effect on
#: the controller immediately — so it is bounded like the dedup window.
SACRIFICE_LEDGER_LIMIT = 256


def hysteresis_from_wire(doc: Any) -> CapacityHysteresis:
    """Parse a policy ``degradation`` document into hysteresis config.

    ``None`` selects the defaults.  Unknown fields are rejected so a
    typo cannot silently fall back to default behaviour.

    Raises:
        ValueError: On a non-object document, unknown fields, or
            parameter values the config itself refuses.
    """
    if doc is None:
        return CapacityHysteresis()
    if not isinstance(doc, dict):
        raise ValueError("degradation config must be a JSON object")
    known = {"confirm_drops", "confirm_restores", "quantum", "floor"}
    unknown = set(doc) - known
    if unknown:
        raise ValueError(f"unknown degradation fields: {sorted(unknown)}")
    defaults = CapacityHysteresis()
    try:
        return CapacityHysteresis(
            confirm_drops=int(doc.get("confirm_drops", defaults.confirm_drops)),
            confirm_restores=int(
                doc.get("confirm_restores", defaults.confirm_restores)
            ),
            quantum=float(doc.get("quantum", defaults.quantum)),
            floor=float(doc.get("floor", defaults.floor)),
        )
    except TypeError as exc:
        raise ValueError(f"malformed degradation config: {exc}") from exc


def hysteresis_to_wire(config: CapacityHysteresis) -> Dict[str, Any]:
    """Canonical wire document for a hysteresis config."""
    return {
        "confirm_drops": config.confirm_drops,
        "confirm_restores": config.confirm_restores,
        "quantum": config.quantum,
        "floor": config.floor,
    }


class DegradationManager:
    """Confirmed-capacity tracking plus the rescale-and-repair action.

    The manager holds no reference to a controller — every action takes
    the controller as an argument — so the serving layer can rebuild
    either side independently during snapshot restore and the manager
    stays trivially testable against a bare controller.

    Attributes:
        estimator: The hysteresis-filtered per-stage capacity estimate.
    """

    def __init__(
        self, num_stages: int, hysteresis: Optional[CapacityHysteresis] = None
    ) -> None:
        self.num_stages = num_stages
        self.estimator = CapacityEstimator(num_stages, hysteresis)
        #: Most recent sacrifice decisions, oldest first:
        #: ``{"stage", "capacity", "sacrificed"}`` per confirmed rescale
        #: that evicted at least one task.
        self._ledger: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # Actions
    # ------------------------------------------------------------------

    def apply_capacity(
        self,
        controller: PipelineAdmissionController,
        stage: int,
        capacity: float,
    ) -> Dict[str, Any]:
        """Authoritative capacity change: rescale, repair, record.

        The explicit ``set_capacity`` path.  Validation happens before
        any mutation (``rescale_stage_capacity`` rejects an out-of-range
        capacity without touching state), then the admitted set is
        re-charged and — if the region no longer holds — repaired by
        sacrifice.  The confirmed estimate is synced to the declared
        level so subsequent ``report`` observations measure against it.

        Returns:
            Summary document: ``stage``, ``capacity``, the ``sacrificed``
            task ids in eviction order, and the post-repair
            ``region_value``.

        Raises:
            ValueError: If ``capacity`` is outside ``[0, 1]`` or not
                finite (controller state unchanged).
        """
        controller.rescale_stage_capacity(stage, capacity)
        sacrificed = controller.repair_region()
        self.estimator.declare(stage, capacity)
        if sacrificed:
            self._ledger.append(
                {
                    "stage": stage,
                    "capacity": capacity,
                    "sacrificed": list(sacrificed),
                }
            )
            del self._ledger[:-SACRIFICE_LEDGER_LIMIT]
        return {
            "stage": stage,
            "capacity": capacity,
            "sacrificed": list(sacrificed),
            "region_value": controller.region_value(),
        }

    def observe(
        self,
        controller: PipelineAdmissionController,
        stage: int,
        kind: str,
        ratio: Optional[float] = None,
    ) -> Dict[str, Any]:
        """Ingest one fault report; act only on a confirmed change.

        The ``report`` path.  The raw observation is turned into a
        capacity sample — ``slowdown`` reports the observed fraction of
        nominal throughput directly; ``overrun`` reports the
        observed/expected service-time ratio, whose reciprocal is the
        capacity the stage is actually delivering; ``ok`` is a healthy
        probe — and fed through the hysteresis filter.  Nothing touches
        the controller until the estimator confirms a new level, at
        which point :meth:`apply_capacity` runs.

        Returns:
            ``{"confirmed": False, "capacity": <current estimate>,
            "sacrificed": []}`` while the filter is still deliberating,
            or ``{"confirmed": True, ...}`` merged with the
            :meth:`apply_capacity` summary on a confirmed change.

        Raises:
            ValueError: On an unknown ``kind``, a missing or
                non-positive ``ratio`` for a kind that requires one, or
                a stage index out of range.
        """
        if kind not in OBSERVATION_KINDS:
            raise ValueError(
                f"kind must be one of {', '.join(OBSERVATION_KINDS)}; got {kind!r}"
            )
        if not 0 <= stage < self.num_stages:
            raise ValueError(f"stage {stage} outside [0, {self.num_stages})")
        if kind == "ok":
            sample = 1.0
        else:
            if ratio is None or not isinstance(ratio, (int, float)) or ratio <= 0:
                raise ValueError(
                    f"{kind} reports require a positive 'ratio' operand"
                )
            ratio = float(ratio)
            if kind == "slowdown":
                sample = min(1.0, ratio)
            else:  # overrun: service took `ratio` times the expectation
                sample = min(1.0, 1.0 / ratio)
        confirmed = self.estimator.observe(stage, sample)
        if confirmed is None:
            return {
                "confirmed": False,
                "capacity": self.estimator.confirmed(stage),
                "sacrificed": [],
            }
        summary = self.apply_capacity(controller, stage, confirmed)
        summary["confirmed"] = True
        return summary

    # ------------------------------------------------------------------
    # Introspection / persistence
    # ------------------------------------------------------------------

    def sacrifices(self) -> List[Dict[str, Any]]:
        """The bounded sacrifice ledger, oldest entry first (copy)."""
        return [dict(entry) for entry in self._ledger]

    def stats_doc(self) -> Dict[str, Any]:
        """Live degradation summary for the ``stats`` op."""
        return {
            "estimated_capacities": list(self.estimator.confirmed_capacities()),
            "confirmed_drops": self.estimator.confirmed_drops,
            "confirmed_restores": self.estimator.confirmed_restores,
            "ledger_entries": len(self._ledger),
        }

    def state_doc(self) -> Dict[str, Any]:
        """JSON-safe full state (pipeline snapshot support)."""
        return {
            "estimator": self.estimator.state_doc(),
            "ledger": self.sacrifices(),
        }

    def load_state(self, doc: Any) -> None:
        """Adopt a :meth:`state_doc` document.

        Raises:
            ValueError: On a malformed document.
        """
        if not isinstance(doc, dict):
            raise ValueError("degradation state must be a JSON object")
        self.estimator.load_state(doc.get("estimator", {}))
        ledger = doc.get("ledger", [])
        if not isinstance(ledger, list) or not all(
            isinstance(entry, dict) for entry in ledger
        ):
            raise ValueError("degradation ledger must be an array of objects")
        parsed: List[Dict[str, Any]] = []
        for entry in ledger:
            try:
                victims: List[Hashable] = list(entry["sacrificed"])
                parsed.append(
                    {
                        "stage": int(entry["stage"]),
                        "capacity": float(entry["capacity"]),
                        "sacrificed": victims,
                    }
                )
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"malformed ledger entry: {exc}") from exc
        self._ledger = parsed[-SACRIFICE_LEDGER_LIMIT:]

    def fingerprint_doc(self) -> Dict[str, Any]:
        """Deterministic state view for recovery equivalence checks."""
        return self.state_doc()
