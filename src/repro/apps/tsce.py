"""The Total Ship Computing Environment (TSCE) case study (Section 5).

Encodes Table 1 — the notional mission-execution task set of a
shipboard computing system in a battle scenario — and the paper's
certification questions:

1. Are Weapon Detection, Weapon Targeting and UAV Video schedulable
   concurrently?  (Reserve their synthetic utilization and check
   Eq. 13: the paper computes per-stage reservations 0.4 / 0.25 / 0.1
   and a region value of 0.93 < 1.)
2. With that capacity set aside permanently, how many Target Tracking
   instances can be admitted dynamically at run time?  (The paper's
   simulation sustains ~550 concurrent tracks with stage 1 the
   bottleneck at ~95% utilization, thanks to the idle-reset rule and a
   200 ms admission wait.)

Times are expressed in seconds.  The third stage hosts display
consoles: critical tasks drive *different* consoles, so their stage-3
reservations combine by ``max`` rather than ``+``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..core.numeric import approx_le
from ..core.reservation import CriticalTask, ReservationPlan, build_reservation
from ..core.task import PeriodicTaskSpec, periodic_spec
from ..sim.pipeline import PipelineSimulation

__all__ = [
    "NUM_STAGES",
    "weapon_detection",
    "weapon_targeting",
    "uav_video",
    "target_tracking_spec",
    "display_pipeline_spec",
    "tsce_critical_tasks",
    "tsce_reservation",
    "TrackingCapacityResult",
    "simulate_tracking_capacity",
    "SelfDefenseResult",
    "simulate_self_defense_scenario",
    "urgent_engagement",
    "make_urgent_task",
]

#: The Table-1 pipeline: tracking -> distribution -> display.
NUM_STAGES = 3

#: Number of display consoles receiving periodic track data.
TRACKING_CONSOLES = 10

#: Consoles used by Weapon Detection / UAV Video respectively.
DETECTION_CONSOLES = 2
VIDEO_CONSOLES = 2


def weapon_detection() -> CriticalTask:
    """Weapon Detection: aperiodic, hard, D = 500 ms.

    Stage costs from Table 1: tracking 100 ms, planning 65 ms,
    display 30 ms (2 consoles).  Per-stage synthetic utilization:
    0.2 / 0.13 / 0.06.
    """
    return CriticalTask(
        name="Weapon Detection",
        deadline=0.5,
        computation_times=(0.100, 0.065, 0.030),
        exclusive_stages=(2,),
    )


def weapon_targeting(num_weapons: int = 1) -> CriticalTask:
    """Weapon Targeting: periodic, hard, P = D = 50 ms.

    Stage costs: tracking 5 ms, distributor 5 ms per weapon, weapon
    release 5 ms.  Per-stage synthetic utilization with one weapon:
    0.1 / 0.1 / 0.1 — but the weapon-release stage is the task's own
    actuator path, shared only with the display consoles, hence
    exclusive.
    """
    if num_weapons < 1:
        raise ValueError(f"num_weapons must be >= 1, got {num_weapons}")
    return CriticalTask(
        name="Weapon Targeting",
        deadline=0.050,
        computation_times=(0.005, 0.005 * num_weapons, 0.005),
        exclusive_stages=(2,),
    )


def uav_video() -> CriticalTask:
    """UAV reconnaissance video: periodic, P = D = 500 ms.

    Stage costs: video processing 50 ms, distributor 5 ms per console
    (2 consoles), display 50 ms (2 consoles).  Per-stage synthetic
    utilization: 0.1 / 0.02 / 0.1 — the largest stage-3 term among the
    critical tasks, which is the one the paper's reservation keeps.
    """
    return CriticalTask(
        name="UAV Video",
        deadline=0.5,
        computation_times=(0.050, 0.005 * VIDEO_CONSOLES, 0.050),
        exclusive_stages=(2,),
    )


def tsce_critical_tasks() -> List[CriticalTask]:
    """The three critical tasks of the certification question."""
    return [weapon_detection(), weapon_targeting(), uav_video()]


def tsce_reservation() -> ReservationPlan:
    """Reserved utilization for the critical set (paper: 0.4 / 0.25 / 0.1).

    The returned plan's region value is ~0.93, under the deadline-
    monotonic budget of 1 — the critical set is schedulable by its
    end-to-end deadlines (the paper's first certification answer).
    """
    return build_reservation(tsce_critical_tasks(), num_stages=NUM_STAGES)


def target_tracking_spec(
    track_id: int,
    period: float = 1.0,
    phase: float = 0.0,
) -> PeriodicTaskSpec:
    """One Target Tracking stream (soft, P = D = 1 s).

    Table 1: the track-update stage costs 1 ms *per track*, while the
    distributor (2 ms per console) and the display (20 ms) run
    periodically and consume time *independent of the number of
    tracks*.  The marginal cost of admitting one more track therefore
    falls entirely on stage 1 — which is why the paper's simulation
    finds stage 1 to be the bottleneck (~95% utilization at ~550
    tracks: 0.4 reserved + 550 x 1 ms / 1 s = 0.95).

    Each track is modeled as its own periodic stream of stage-1-only
    invocations; the track-independent distributor/display load is a
    separate fixed stream (see :func:`display_pipeline_spec`).
    """
    return periodic_spec(
        name=f"Track {track_id}",
        period=period,
        computation_times=(0.001, 0.0, 0.0),
        deadline=1.0,
        importance=0,
        phase=phase,
        hard=False,
    )


def display_pipeline_spec(num_consoles: int = TRACKING_CONSOLES) -> PeriodicTaskSpec:
    """The track-count-independent distribution/display stream.

    The Table-1 distributor consumes 2 ms per console per period and
    the consoles 20 ms each to present all data, regardless of how
    many tracks are active.  Modeled as one periodic task at the
    tracking period.
    """
    if num_consoles < 1:
        raise ValueError(f"num_consoles must be >= 1, got {num_consoles}")
    return periodic_spec(
        name="Track Distribution/Display",
        period=1.0,
        computation_times=(0.0, 0.002 * num_consoles, 0.020),
        deadline=1.0,
        importance=50,
        hard=False,
    )


@dataclass(frozen=True)
class TrackingCapacityResult:
    """Outcome of the dynamic track-admission experiment.

    Attributes:
        num_tracks: Number of concurrent Target Tracking streams offered.
        rejection_ratio: Fraction of track invocations finally rejected
            (after the admission wait).
        miss_ratio: Deadline-miss ratio among admitted invocations.
        stage_utilizations: Real utilization per stage.
    """

    num_tracks: int
    rejection_ratio: float
    miss_ratio: float
    stage_utilizations: Tuple[float, ...]

    @property
    def bottleneck_stage(self) -> int:
        """Index of the busiest stage (paper: stage 1, index 0)."""
        return max(
            range(len(self.stage_utilizations)),
            key=lambda j: self.stage_utilizations[j],
        )


def simulate_tracking_capacity(
    num_tracks: int,
    horizon: float = 30.0,
    admission_wait: float = 0.2,
    seed: int = 0,
    include_critical: bool = True,
) -> TrackingCapacityResult:
    """Run the Section-5 experiment for a given tracking population.

    Reserved utilization (0.4, 0.25, 0.1) is set aside for the critical
    tasks, which execute periodically against it; ``num_tracks``
    Target Tracking streams are offered dynamically, each invocation
    waiting up to ``admission_wait`` (the paper uses 200 ms) before
    final rejection.

    Args:
        num_tracks: Concurrent tracking streams to offer.
        horizon: Simulated seconds.
        admission_wait: Maximum admission-queue wait per invocation.
        seed: Phase-randomization seed for the track streams.
        include_critical: Also execute the critical tasks (set False to
            study the reservation's admission effect in isolation).

    Returns:
        A :class:`TrackingCapacityResult`.
    """
    import random

    plan = tsce_reservation()
    sim = PipelineSimulation(
        num_stages=NUM_STAGES,
        reserved=plan.reserved,
        max_admission_wait=admission_wait,
    )
    if include_critical:
        # Critical periodic tasks run against the reserved share.
        sim.submit_reserved(
            periodic_spec(
                "Weapon Targeting",
                period=0.050,
                computation_times=weapon_targeting().computation_times,
                importance=100,
                hard=True,
            ),
            until=horizon,
        )
        sim.submit_reserved(
            periodic_spec(
                "UAV Video",
                period=0.5,
                computation_times=uav_video().computation_times,
                importance=90,
                hard=True,
            ),
            until=horizon,
        )
        # Weapon Detection is aperiodic; model sporadic activations at
        # half its deadline period on average is too aggressive — the
        # reservation covers worst-case back-to-back arrivals, so a
        # 500 ms sporadic stream exercises the full reserved share.
        sim.submit_reserved(
            periodic_spec(
                "Weapon Detection",
                period=0.5,
                computation_times=weapon_detection().computation_times,
                deadline=0.5,
                importance=95,
                hard=True,
            ),
            until=horizon,
        )
        sim.submit_reserved(display_pipeline_spec(), until=horizon)
    rng = random.Random(seed)
    tracking_streams = [
        target_tracking_spec(i, phase=rng.uniform(0.0, 1.0)) for i in range(num_tracks)
    ]
    offered = 0
    for spec in tracking_streams:
        for task in spec.invocations(horizon):
            sim.offer_at(task)
            offered += 1
    report = sim.run(horizon, warmup=min(2.0, horizon / 10))
    dynamic = [t for t in report.tasks if t.stream_id is not None and t.importance == 0]
    rejected = sum(1 for t in dynamic if not t.admitted)
    rejection_ratio = rejected / len(dynamic) if dynamic else 0.0
    return TrackingCapacityResult(
        num_tracks=num_tracks,
        rejection_ratio=rejection_ratio,
        miss_ratio=report.miss_ratio(),
        stage_utilizations=report.utilizations(),
    )


@dataclass(frozen=True)
class SelfDefenseResult:
    """Outcome of the dynamic-importance (self-defense) scenario.

    Attributes:
        urgent_admitted: Whether every urgent self-defense task was
            admitted.
        urgent_misses: Deadline misses among urgent tasks (must be 0).
        shed_tasks: Number of lower-importance tasks shed to make room.
        tracking_miss_ratio: Miss ratio among surviving tracking
            invocations (soft tasks; must stay 0 — shedding removes
            load, it never delays what stays admitted).
    """

    urgent_admitted: bool
    urgent_misses: int
    shed_tasks: int
    tracking_miss_ratio: float


def simulate_self_defense_scenario(
    routine_rate: float = 4.0,
    num_threats: int = 5,
    horizon: float = 12.0,
    seed: int = 0,
) -> SelfDefenseResult:
    """The Section-5 dynamic-importance scenario.

    "If a series of sensor reports meet certain threat criteria, an
    urgent self-defense mode can be enabled.  Further processing of
    that target becomes an urgent aperiodic task with a hard real-time
    deadline to launch a countermeasure."  Cost considerations preclude
    reserving capacity for the *simultaneous* occurrence of all urgent
    aperiodics; instead, when an important arrival would leave the
    feasible region, less important admitted load is shed in reverse
    order of semantic importance until the arrival fits — decoupling
    scheduling priority (deadline-monotonic) from semantic priority.

    The scenario saturates the pipeline with routine surveillance
    tasks (importance 0, chunky: 300/200/100 ms within 2 s), then
    injects urgent self-defense activations (the Weapon Detection
    profile, importance 95, hard 500 ms deadline) midway.  Under
    ``admit_with_shedding`` every urgent task must be admitted —
    shedding routine load as needed — and meet its deadline.

    Args:
        routine_rate: Poisson arrival rate of routine tasks (per
            second); 4.0 keeps the region saturated.
        num_threats: Urgent self-defense activations.
        horizon: Simulated seconds.
        seed: Arrival-randomization seed.

    Returns:
        A :class:`SelfDefenseResult`.
    """
    import random

    from ..core.task import make_task

    sim = PipelineSimulation(num_stages=NUM_STAGES, admit_with_shedding=True)
    rng = random.Random(seed)
    t = rng.expovariate(routine_rate)
    while t < horizon:
        sim.offer_at(
            make_task(
                arrival_time=t,
                deadline=2.0,
                computation_times=(0.300, 0.200, 0.100),
                importance=0,
            )
        )
        t += rng.expovariate(routine_rate)
    wd = weapon_detection()
    urgent_ids = []
    for k in range(num_threats):
        arrival = horizon / 2 + k * 0.6
        task = make_urgent_task(arrival, wd)
        urgent_ids.append(task.task_id)
        sim.offer_at(task)
    report = sim.run(horizon, warmup=1.0)
    urgent_records = [r for r in report.tasks if r.task_id in set(urgent_ids)]
    routine_records = [
        r
        for r in report.tasks
        if r.task_id not in set(urgent_ids) and not r.shed
    ]
    judged = [
        r for r in routine_records if r.admitted and approx_le(r.absolute_deadline, horizon)
    ]
    missed = sum(1 for r in judged if r.missed or r.completed_at is None)
    return SelfDefenseResult(
        urgent_admitted=all(r.admitted for r in urgent_records),
        urgent_misses=sum(
            1
            for r in urgent_records
            if r.admitted
            and (
                r.missed
                or (r.completed_at is None and approx_le(r.absolute_deadline, horizon))
            )
        ),
        shed_tasks=report.shed_count,
        tracking_miss_ratio=missed / len(judged) if judged else 0.0,
    )


def urgent_engagement() -> CriticalTask:
    """An urgent target-engagement activation (self-defense mode).

    Hard 500 ms deadline; 15 ms tracking + 5 ms planning + 2 ms display
    — an *additional* aperiodic beyond the reserved Weapon Detection.
    """
    return CriticalTask(
        name="Urgent Engagement",
        deadline=0.5,
        computation_times=(0.015, 0.005, 0.002),
    )


def make_urgent_task(arrival: float, profile: CriticalTask):
    """Build one urgent self-defense activation from a critical profile."""
    from ..core.task import make_task

    return make_task(
        arrival_time=arrival,
        deadline=profile.deadline,
        computation_times=profile.computation_times,
        importance=95,
    )
