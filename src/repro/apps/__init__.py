"""Application models built on the public API.

- :mod:`repro.apps.tsce` — the Total Ship Computing Environment case
  study (Section 5, Table 1);
- :mod:`repro.apps.webserver` — the multi-tier web server from the
  introduction's motivation.
"""

from .tsce import (
    NUM_STAGES,
    TrackingCapacityResult,
    display_pipeline_spec,
    simulate_tracking_capacity,
    target_tracking_spec,
    tsce_critical_tasks,
    tsce_reservation,
    uav_video,
    weapon_detection,
    weapon_targeting,
)
from .webserver import DEFAULT_REQUEST_MIX, RequestClass, WebServerModel

__all__ = [
    "NUM_STAGES",
    "weapon_detection",
    "weapon_targeting",
    "uav_video",
    "target_tracking_spec",
    "display_pipeline_spec",
    "tsce_critical_tasks",
    "tsce_reservation",
    "TrackingCapacityResult",
    "simulate_tracking_capacity",
    "RequestClass",
    "DEFAULT_REQUEST_MIX",
    "WebServerModel",
]
