"""Multi-tier web server model (the introduction's motivating example).

Requests on a web server are processed by a front end and several
back-end tiers (business logic, database).  The intro motivates the
aperiodic pipeline theory with exactly this workload: high task
resolution (individual request execution times are much smaller than
response-time requirements, "allowing hundreds of requests to be
handled concurrently"), aperiodic arrivals, and per-class QoS
guarantees.

This module packages a three-tier request pipeline with request
classes (static, dynamic, transactional) and helpers to size the
deployment against the feasible region.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Sequence, Tuple

from ..core.bounds import pipeline_region_value, region_budget
from ..core.numeric import EPS
from ..core.task import PipelineTask, make_task
from ..faults.degradation import BrownoutConfig, BrownoutController
from ..sim.metrics import SimulationReport
from ..sim.pipeline import PipelineSimulation

__all__ = [
    "RequestClass",
    "DEFAULT_REQUEST_MIX",
    "WebServerModel",
]

#: Tier names, in pipeline order.
TIERS = ("front-end", "business-logic", "database")


@dataclass(frozen=True)
class RequestClass:
    """A class of web requests with a response-time guarantee.

    Attributes:
        name: Class name (e.g. ``"static"``).
        mean_tier_costs: Mean exponential service demand per tier, in
            seconds.
        deadline: Relative response-time guarantee, in seconds.
        weight: Relative arrival share within the mix.
        importance: Shedding order (higher is kept longer).
    """

    name: str
    mean_tier_costs: Tuple[float, float, float]
    deadline: float
    weight: float
    importance: int = 0

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"{self.name}: deadline must be > 0")
        if any(c < 0 for c in self.mean_tier_costs):
            raise ValueError(f"{self.name}: tier costs must be >= 0")
        if self.weight <= 0:
            raise ValueError(f"{self.name}: weight must be > 0")

    @property
    def mean_total_cost(self) -> float:
        return sum(self.mean_tier_costs)

    @property
    def resolution(self) -> float:
        """Task resolution of the class (deadline / mean total demand)."""
        total = self.mean_total_cost
        return float("inf") if total == 0 else self.deadline / total


#: A representative mix: cheap cached static pages, dynamic pages with
#: business logic, and transactional requests dominated by the database.
DEFAULT_REQUEST_MIX: Tuple[RequestClass, ...] = (
    RequestClass(
        name="static",
        mean_tier_costs=(0.002, 0.000, 0.000),
        deadline=0.5,
        weight=0.6,
        importance=0,
    ),
    RequestClass(
        name="dynamic",
        mean_tier_costs=(0.002, 0.008, 0.004),
        deadline=1.0,
        weight=0.3,
        importance=1,
    ),
    RequestClass(
        name="transactional",
        mean_tier_costs=(0.002, 0.006, 0.020),
        deadline=2.0,
        weight=0.1,
        importance=2,
    ),
)


class WebServerModel:
    """A three-tier server under utilization-based admission control.

    Args:
        request_mix: Request classes and their arrival shares.
        arrival_rate: Total request arrival rate (requests/second).
        admission_wait: Optional wait budget at the admission
            controller (seconds).
    """

    def __init__(
        self,
        request_mix: Sequence[RequestClass] = DEFAULT_REQUEST_MIX,
        arrival_rate: float = 100.0,
        admission_wait: float = 0.0,
    ) -> None:
        if not request_mix:
            raise ValueError("request mix must be non-empty")
        if arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {arrival_rate}")
        self.request_mix = tuple(request_mix)
        self.arrival_rate = arrival_rate
        self.admission_wait = admission_wait
        total_weight = sum(c.weight for c in self.request_mix)
        self._probabilities = [c.weight / total_weight for c in self.request_mix]

    # ------------------------------------------------------------------
    # Static sizing
    # ------------------------------------------------------------------

    def offered_tier_loads(self) -> Tuple[float, ...]:
        """Mean offered load per tier: ``lambda * E[C_j]`` under the mix."""
        loads = [0.0] * len(TIERS)
        for cls, p in zip(self.request_mix, self._probabilities):
            for j, cost in enumerate(cls.mean_tier_costs):
                loads[j] += self.arrival_rate * p * cost
        return tuple(loads)

    def mean_synthetic_load(self) -> Tuple[float, ...]:
        """Expected steady-state synthetic utilization per tier.

        Each in-flight request of class ``k`` contributes
        ``C_kj / D_k`` for ``D_k`` seconds, so by Little's law the
        expected synthetic utilization equals
        ``lambda_k * D_k * C_kj / D_k = lambda_k * C_kj`` summed over
        classes — identical to the offered load.  (The admission test
        constrains the *peak*, not the mean.)
        """
        return self.offered_tier_loads()

    def static_headroom(self) -> float:
        """Region budget left at the mean operating point.

        Negative values mean the offered mix cannot even sustain its
        average inside the feasible region — requests will be dropped
        at steady state.
        """
        loads = self.offered_tier_loads()
        if any(u >= 1.0 for u in loads):
            return float("-inf")
        return region_budget() - pipeline_region_value(loads)

    def max_arrival_rate_within_region(self) -> float:
        """Largest arrival rate whose *mean* operating point stays feasible.

        Scales the mix rate until ``sum_j f(lambda * E[C_j]) = 1``
        (bisection; monotone in the rate).
        """
        per_rate = [u / self.arrival_rate for u in self.offered_tier_loads()]

        def value(rate: float) -> float:
            # Clamp just inside the f(U) pole at U = 1 using the shared
            # numeric tolerance, so the bisection bracket stays finite.
            utils = [min(rate * u, 1.0 - EPS) for u in per_rate]
            return pipeline_region_value(utils)

        lo, hi = 0.0, 1.0
        while value(hi) < 1.0 and hi < 1e12:
            hi *= 2.0
        for _ in range(200):
            mid = (lo + hi) / 2.0
            if value(mid) <= 1.0:
                lo = mid
            else:
                hi = mid
        return lo

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def request_stream(self, rng: random.Random) -> Iterator[PipelineTask]:
        """The endless seeded Poisson request stream under the mix.

        Draw order per request is fixed (inter-arrival gap, class
        choice, per-tier costs), so any prefix of the stream is a pure
        function of the seed — the property the serving load generator
        depends on for byte-stable replays.
        """
        t = rng.expovariate(self.arrival_rate)
        classes = list(self.request_mix)
        while True:
            cls = rng.choices(classes, weights=self._probabilities, k=1)[0]
            costs = [
                rng.expovariate(1.0 / c) if c > 0 else 0.0
                for c in cls.mean_tier_costs
            ]
            yield make_task(
                arrival_time=t,
                deadline=cls.deadline,
                computation_times=costs,
                importance=cls.importance,
            )
            t += rng.expovariate(self.arrival_rate)

    def requests(self, horizon: float, rng: random.Random) -> Iterator[PipelineTask]:
        """Generate the Poisson request stream over ``[0, horizon)``."""
        for task in self.request_stream(rng):
            if task.arrival_time >= horizon:
                return
            yield task

    def request_trace(self, count: int, seed: int) -> Tuple[PipelineTask, ...]:
        """The first ``count`` requests of the seed's stream, re-identified.

        Task ids are rewritten to ``0..count-1`` so the trace is fully
        reproducible across processes *and* within one process (the
        default ids come from a global counter).  This is the loadgen
        scenario input.

        Raises:
            ValueError: If ``count`` is negative.
        """
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count}")
        rng = random.Random(seed)
        trace = []
        for task_id, task in enumerate(self.request_stream(rng)):
            if task_id >= count:
                break
            trace.append(
                make_task(
                    arrival_time=task.arrival_time,
                    deadline=task.deadline,
                    computation_times=task.computation_times,
                    importance=task.importance,
                    task_id=task_id,
                )
            )
        return tuple(trace)

    def simulate(
        self, horizon: float = 60.0, seed: int = 0, warmup_fraction: float = 0.05
    ) -> SimulationReport:
        """Run the server under admission control and report.

        Args:
            horizon: Simulated seconds.
            seed: RNG seed.
            warmup_fraction: Fraction of the horizon excluded from
                utilization measurement.
        """
        sim = PipelineSimulation(
            num_stages=len(TIERS),
            max_admission_wait=self.admission_wait,
        )
        rng = random.Random(seed)
        sim.offer_stream(self.requests(horizon, rng))
        return sim.run(horizon, warmup=horizon * warmup_fraction)

    def simulate_brownout(
        self,
        horizon: float = 60.0,
        seed: int = 0,
        warmup_fraction: float = 0.05,
        config: Optional[BrownoutConfig] = None,
    ) -> Tuple[SimulationReport, BrownoutController]:
        """Run the server with brownout-mode load shedding.

        Under sustained overload the brownout controller sheds whole
        request classes in increasing order of importance *before* the
        admission test, so the feasible-region headroom is spent on the
        traffic that matters (transactional over dynamic over static)
        instead of first-come-first-served.

        Args:
            horizon: Simulated seconds.
            seed: RNG seed (same seed as :meth:`simulate` replays the
                identical request stream).
            warmup_fraction: Fraction of the horizon excluded from
                utilization measurement.
            config: Brownout control-loop parameters; the default sheds
                up to all classes below the most important one.

        Returns:
            The simulation report and the brownout controller (for shed
            counters and the level history).
        """
        if config is None:
            config = BrownoutConfig(
                max_level=max(c.importance for c in self.request_mix)
            )
        sim = PipelineSimulation(
            num_stages=len(TIERS),
            max_admission_wait=self.admission_wait,
        )
        brownout = BrownoutController(sim, config).install()
        rng = random.Random(seed)
        brownout.offer_stream(self.requests(horizon, rng))
        report = sim.run(horizon, warmup=horizon * warmup_fraction)
        return report, brownout

    def per_class_accept_ratios(self, report: SimulationReport) -> Dict[str, float]:
        """Accept ratio per request class (classes keyed by importance)."""
        by_importance = {cls.importance: cls.name for cls in self.request_mix}
        admitted: Dict[str, int] = {}
        offered: Dict[str, int] = {}
        for record in report.tasks:
            name = by_importance.get(record.importance)
            if name is None:
                continue
            offered[name] = offered.get(name, 0) + 1
            if record.admitted:
                admitted[name] = admitted.get(name, 0) + 1
        return {
            name: admitted.get(name, 0) / count
            for name, count in offered.items()
        }
