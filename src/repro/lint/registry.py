"""Pluggable rule registry.

Rules self-register via the :func:`register` decorator at import time;
:mod:`repro.lint.rules` imports every rule module, so importing that
package populates the registry.  The CLI's ``--select`` / ``--ignore``
and the ``# repro: noqa[RULE]`` suppression all key off ``rule_id``.

Two rule kinds share the id namespace:

- :class:`Rule` — per-file AST checks (one :class:`FileContext` at a
  time); the PR-1 rule set.
- :class:`ProjectRule` — whole-program checks over a
  :class:`~repro.lint.graph.ProjectContext` (call graph, symbol table,
  cross-file reachability); registered via :func:`register_project`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .context import FileContext
from .findings import Finding

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from .graph import ProjectContext

__all__ = [
    "Rule",
    "ProjectRule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "get_rule",
    "rule_ids",
    "known_rule_ids",
]


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set :attr:`rule_id` and :attr:`summary`, optionally
    narrow :attr:`scope` to repository sub-packages, and implement
    :meth:`check`.

    Attributes:
        rule_id: Stable identifier (``RNG001``, ``MDL004``, ...).
        summary: One-line description shown by ``--list-rules``.
        scope: Package directory names the rule applies to (e.g.
            ``("sim", "apps")``).  Empty means every file.  Files whose
            path does not lie in any known package directory (ad-hoc
            snippets, fixtures) are always in scope.
    """

    rule_id: str = ""
    summary: str = ""
    scope: Tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError
        yield  # pragma: no cover — makes this a generator for typing

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether the file is inside this rule's directory scope."""
        return ctx.in_scope(self.scope)


class ProjectRule:
    """Base class for one whole-program static-analysis rule.

    Subclasses set :attr:`rule_id` / :attr:`summary` and implement
    :meth:`check_project` against the call graph.  Findings land in
    whatever file the offending node lives in; the runner applies
    per-file noqa suppression afterwards exactly as for file rules.
    """

    rule_id: str = ""
    summary: str = ""
    scope: Tuple[str, ...] = ()  # informational; project rules self-scope

    def check_project(self, project: "ProjectContext") -> Iterator[Finding]:
        """Yield findings across the whole project."""
        raise NotImplementedError
        yield  # pragma: no cover — makes this a generator for typing


_REGISTRY: Dict[str, Type[Rule]] = {}
_PROJECT_REGISTRY: Dict[str, Type[ProjectRule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define rule_id")
    if rule_cls.rule_id in _REGISTRY or rule_cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def register_project(rule_cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define rule_id")
    if rule_cls.rule_id in _REGISTRY or rule_cls.rule_id in _PROJECT_REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _PROJECT_REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def rule_ids() -> List[str]:
    """All per-file rule ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def known_rule_ids() -> List[str]:
    """Every rule id the analyzer knows — file and project rules."""
    _ensure_loaded()
    return sorted({*_REGISTRY, *_PROJECT_REGISTRY})


def get_rule(rule_id: str):
    """Instantiate the rule registered under ``rule_id`` (either kind).

    Raises:
        KeyError: If no such rule exists.
    """
    _ensure_loaded()
    if rule_id in _REGISTRY:
        return _REGISTRY[rule_id]()
    return _PROJECT_REGISTRY[rule_id]()


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate registered rules, filtered and sorted by id.

    Args:
        select: If given, only these rule ids run.
        ignore: Rule ids to drop (applied after ``select``).

    Raises:
        KeyError: If ``select``/``ignore`` name an unknown rule.
    """
    _ensure_loaded()
    wanted = set(_REGISTRY) if select is None else set(select)
    known = set(_REGISTRY) | set(_PROJECT_REGISTRY)
    unknown = (wanted | set(ignore or ())) - known
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    wanted = (wanted & set(_REGISTRY)) - set(ignore or ())
    return [_REGISTRY[rid]() for rid in sorted(wanted)]


def all_project_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[ProjectRule]:
    """Instantiate registered whole-program rules, filtered and sorted.

    Unknown ids in ``select``/``ignore`` raise exactly as
    :func:`all_rules` does (ids naming file rules are simply not
    project rules and are filtered, not rejected).
    """
    _ensure_loaded()
    wanted = set(_PROJECT_REGISTRY) if select is None else set(select)
    known = set(_REGISTRY) | set(_PROJECT_REGISTRY)
    unknown = (wanted | set(ignore or ())) - known
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    wanted = (wanted & set(_PROJECT_REGISTRY)) - set(ignore or ())
    return [_PROJECT_REGISTRY[rid]() for rid in sorted(wanted)]


def _ensure_loaded() -> None:
    """Import the bundled rule modules (idempotent)."""
    from . import rules  # noqa: F401 — import side effect registers rules
