"""Pluggable rule registry.

Rules self-register via the :func:`register` decorator at import time;
:mod:`repro.lint.rules` imports every rule module, so importing that
package populates the registry.  The CLI's ``--select`` / ``--ignore``
and the ``# repro: noqa[RULE]`` suppression all key off ``rule_id``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple, Type

from .context import FileContext
from .findings import Finding

__all__ = ["Rule", "register", "all_rules", "get_rule", "rule_ids"]


class Rule:
    """Base class for one static-analysis rule.

    Subclasses set :attr:`rule_id` and :attr:`summary`, optionally
    narrow :attr:`scope` to repository sub-packages, and implement
    :meth:`check`.

    Attributes:
        rule_id: Stable identifier (``RNG001``, ``MDL004``, ...).
        summary: One-line description shown by ``--list-rules``.
        scope: Package directory names the rule applies to (e.g.
            ``("sim", "apps")``).  Empty means every file.  Files whose
            path does not lie in any known package directory (ad-hoc
            snippets, fixtures) are always in scope.
    """

    rule_id: str = ""
    summary: str = ""
    scope: Tuple[str, ...] = ()

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one parsed file."""
        raise NotImplementedError
        yield  # pragma: no cover — makes this a generator for typing

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether the file is inside this rule's directory scope."""
        return ctx.in_scope(self.scope)


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_cls`` to the global registry."""
    if not rule_cls.rule_id:
        raise ValueError(f"{rule_cls.__name__} must define rule_id")
    if rule_cls.rule_id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_cls.rule_id}")
    _REGISTRY[rule_cls.rule_id] = rule_cls
    return rule_cls


def rule_ids() -> List[str]:
    """All registered rule ids, sorted."""
    _ensure_loaded()
    return sorted(_REGISTRY)


def get_rule(rule_id: str) -> Rule:
    """Instantiate the rule registered under ``rule_id``.

    Raises:
        KeyError: If no such rule exists.
    """
    _ensure_loaded()
    return _REGISTRY[rule_id]()


def all_rules(
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Rule]:
    """Instantiate registered rules, filtered and sorted by id.

    Args:
        select: If given, only these rule ids run.
        ignore: Rule ids to drop (applied after ``select``).

    Raises:
        KeyError: If ``select``/``ignore`` name an unknown rule.
    """
    _ensure_loaded()
    wanted = set(_REGISTRY) if select is None else set(select)
    unknown = (wanted | set(ignore or ())) - set(_REGISTRY)
    if unknown:
        raise KeyError(f"unknown rule id(s): {', '.join(sorted(unknown))}")
    wanted -= set(ignore or ())
    return [_REGISTRY[rid]() for rid in sorted(wanted)]


def _ensure_loaded() -> None:
    """Import the bundled rule modules (idempotent)."""
    from . import rules  # noqa: F401 — import side effect registers rules
