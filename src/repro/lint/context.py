"""Per-file analysis context: source, AST, noqa suppression, path scope."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from pathlib import PurePath
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .findings import Finding

__all__ = ["FileContext", "KNOWN_PACKAGE_DIRS"]

#: Directory names that identify where a file sits in the repository
#: layout.  A file under none of these (e.g. a unit-test fixture in a
#: temp dir) is treated as in scope for *every* rule, so snippets can be
#: linted without faking a package path.
KNOWN_PACKAGE_DIRS: FrozenSet[str] = frozenset(
    {
        "core",
        "sim",
        "apps",
        "experiments",
        "analysis",
        "lint",
        "serve",
        "tests",
        "benchmarks",
        "examples",
    }
)

#: ``repro: noqa`` comments (suppress all rules on the line) or
#: ``repro: noqa[RULE1,RULE2]`` (suppress listed rules only).
_NOQA_RE = re.compile(r"#\s*repro:\s*noqa(?:\[([A-Za-z0-9_,\s]+)\])?")

#: Sentinel for a bare ``repro: noqa`` comment suppressing every rule.
_ALL: FrozenSet[str] = frozenset({"*"})


class FileContext:
    """One parsed source file plus everything rules need to inspect it.

    Attributes:
        path: Path the file was loaded from (or a synthetic label).
        source: Full source text.
        tree: Parsed module AST.
        lines: Source split into lines (1-based access via index + 1).
    """

    def __init__(self, path: str, source: str, tree: Optional[ast.Module] = None) -> None:
        self.path = path
        self.source = source
        self.tree: ast.Module = ast.parse(source, filename=path) if tree is None else tree
        self.lines: List[str] = source.splitlines()
        self._noqa: Dict[int, FrozenSet[str]] = self._parse_noqa()
        #: rule ids (or ``"*"``) each noqa line actually suppressed —
        #: feeds the unused-suppression check (SUP001).
        self._noqa_used: Dict[int, Set[str]] = {}
        self._parts: FrozenSet[str] = frozenset(PurePath(path).parts)

    def _parse_noqa(self) -> Dict[int, FrozenSet[str]]:
        """Noqa table from real ``COMMENT`` tokens only.

        Tokenizing (rather than regexing raw lines) means a docstring
        *describing* the ``# repro: noqa[RULE]`` syntax never counts as
        a suppression.  Tokenization failures (only possible for
        sources that did not come from :func:`ast.parse`-clean text)
        fall back to an empty table.
        """
        table: Dict[int, FrozenSet[str]] = {}
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(self.source).readline))
        except (tokenize.TokenError, IndentationError):
            return table
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(token.string)
            if match is None:
                continue
            lineno = token.start[0]
            if match.group(1) is None:
                table[lineno] = _ALL
            else:
                table[lineno] = frozenset(
                    part.strip().upper() for part in match.group(1).split(",") if part.strip()
                )
        return table

    def suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is noqa-suppressed on ``line``.

        A match is recorded as a *use* of that suppression so the
        runner can flag noqa comments that no longer suppress anything.
        """
        entry = self._noqa.get(line)
        if entry is None:
            return False
        rule = rule_id.upper()
        if entry is _ALL or "*" in entry:
            self._noqa_used.setdefault(line, set()).add("*")
            return True
        if rule in entry:
            self._noqa_used.setdefault(line, set()).add(rule)
            return True
        return False

    def unused_suppressions(self) -> List[Tuple[int, str]]:
        """``(line, rule_id_or_star)`` for noqa entries nothing used.

        Meaningful only after every rule's findings have been run
        through :meth:`filter_suppressed` / :meth:`suppressed` for this
        file — the runner calls it last.
        """
        stale: List[Tuple[int, str]] = []
        for line, entry in sorted(self._noqa.items()):
            used = self._noqa_used.get(line, set())
            if entry is _ALL or "*" in entry:
                if "*" not in used:
                    stale.append((line, "*"))
                continue
            for rule in sorted(entry):
                if rule not in used:
                    stale.append((line, rule))
        return stale

    def in_scope(self, scope: Tuple[str, ...]) -> bool:
        """Whether this file falls inside a rule's directory scope.

        An empty ``scope`` matches everything.  Files outside every
        known package directory (fixtures, snippets) match any scope.
        """
        if not scope:
            return True
        if not (self._parts & KNOWN_PACKAGE_DIRS):
            return True
        return bool(self._parts & set(scope))

    def finding(self, rule_id: str, node: ast.AST, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_id,
            message=message,
        )

    def filter_suppressed(self, findings: Iterable[Finding]) -> List[Finding]:
        """Drop findings whose line carries a matching noqa comment."""
        return [f for f in findings if not self.suppressed(f.rule, f.line)]
