"""Model rules: static validation of task-set/DAG/experiment literals.

The feasible region (Eqs. 12/13/15) and Theorem 2 carry preconditions
on the model parameters themselves, independent of any simulation.
When a constructor call spells those parameters out as literals, the
violation is decidable at lint time:

- ``MDL001`` — a per-stage cost ``C_ij`` exceeding the end-to-end
  deadline ``D_i`` makes the synthetic-utilization contribution
  ``C_ij / D_i`` exceed 1 on its own; the task can never meet its
  deadline and Theorem 1's busy-period argument does not apply.
- ``MDL002`` — Theorem 2 requires a *directed acyclic* subtask graph:
  the delay expression ``d(...)`` is only well-defined (and the
  critical path only finite) without cycles.
- ``MDL003`` — the urgency-inversion parameter must satisfy
  ``alpha in (0, 1]``; Eq. 12's right-hand side is vacuous at 0 and
  ``alpha > 1`` has no meaning (DM, the optimum, attains exactly 1).
- ``MDL004`` — Eq. 15's right-hand side ``alpha (1 - sum_j beta_j)``
  is non-positive once normalized blocking terms sum to 1 or more:
  the feasible region is empty and every admission test fails.

Only literal arguments are judged; computed expressions are left to the
runtime validators in :mod:`repro.core`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = [
    "StageCostExceedsDeadlineRule",
    "CyclicTaskGraphRule",
    "AlphaRangeRule",
    "BlockingSumRule",
]


def _terminal_name(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal_number(node: Optional[ast.expr]) -> Optional[float]:
    """Numeric value of an int/float literal (incl. unary +/-), else None."""
    if node is None:
        return None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        inner = _literal_number(node.operand)
        if inner is None:
            return None
        return -inner if isinstance(node.op, ast.USub) else inner
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)):
        if isinstance(node.value, bool):
            return None
        return float(node.value)
    return None


def _literal_number_seq(node: Optional[ast.expr]) -> Optional[List[float]]:
    """Values of a tuple/list of numeric literals, else None."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values: List[float] = []
    for elt in node.elts:
        value = _literal_number(elt)
        if value is None:
            return None
        values.append(value)
    return values


def _argument(call: ast.Call, keyword: str, position: Optional[int]) -> Optional[ast.expr]:
    """Fetch an argument by keyword, falling back to position."""
    for kw in call.keywords:
        if kw.arg == keyword:
            return kw.value
    if position is not None and position < len(call.args):
        arg = call.args[position]
        if not isinstance(arg, ast.Starred):
            return arg
    return None


# ----------------------------------------------------------------------
# MDL001 — stage cost exceeding end-to-end deadline
# ----------------------------------------------------------------------

#: Constructor name -> (deadline pos, computation_times pos, period pos).
#: Keywords are always tried first; period is the implicit-deadline
#: fallback for the periodic constructors.
_TASK_CTORS: Dict[str, Tuple[Optional[int], Optional[int], Optional[int]]] = {
    "make_task": (1, 2, None),
    "PipelineTask": (2, 3, None),
    "periodic_spec": (3, 2, 1),
    "PeriodicTaskSpec": (2, 3, 1),
}


@register
class StageCostExceedsDeadlineRule(Rule):
    """MDL001: literal ``C_ij`` larger than the end-to-end deadline."""

    rule_id = "MDL001"
    summary = (
        "stage cost C_ij exceeds the end-to-end deadline D_i — the task's "
        "synthetic contribution C_ij/D_i > 1 can never be admitted"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name not in _TASK_CTORS:
                continue
            deadline_pos, costs_pos, period_pos = _TASK_CTORS[name]
            deadline = _literal_number(_argument(node, "deadline", deadline_pos))
            if deadline is None and period_pos is not None:
                deadline = _literal_number(_argument(node, "period", period_pos))
            costs = _literal_number_seq(
                _argument(node, "computation_times", costs_pos)
            )
            if deadline is None or costs is None:
                continue
            for stage, cost in enumerate(costs):
                if cost > deadline:  # repro: noqa[FLT002] — exact check on literal constants
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{name}: stage-{stage} cost {cost:g} exceeds the "
                        f"end-to-end deadline {deadline:g} (C_ij/D_i = "
                        f"{cost / deadline:.3g} > 1) — the task is unschedulable "
                        "by construction",
                    )


# ----------------------------------------------------------------------
# MDL002 — cyclic task-graph construction
# ----------------------------------------------------------------------


@register
class CyclicTaskGraphRule(Rule):
    """MDL002: literal ``TaskGraph`` edges forming a cycle."""

    rule_id = "MDL002"
    summary = (
        "TaskGraph constructed with literal edges containing a cycle — "
        "Theorem 2 requires a DAG (the critical-path delay d(...) diverges)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _terminal_name(node.func) == "TaskGraph"):
                continue
            edges = self._literal_edges(_argument(node, "edges", 1))
            if edges is None:
                continue
            cycle = self._find_cycle(edges)
            if cycle is not None:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    "TaskGraph edges contain the cycle "
                    + " -> ".join(repr(n) for n in cycle)
                    + " — Theorem 2 applies to acyclic subtask graphs only",
                )

    @staticmethod
    def _literal_edges(node: Optional[ast.expr]) -> Optional[List[Tuple[object, object]]]:
        if not isinstance(node, (ast.List, ast.Tuple)):
            return None
        edges: List[Tuple[object, object]] = []
        for elt in node.elts:
            if not (isinstance(elt, (ast.Tuple, ast.List)) and len(elt.elts) == 2):
                return None
            endpoints = []
            for end in elt.elts:
                if not (
                    isinstance(end, ast.Constant)
                    and isinstance(end.value, (str, int))
                    and not isinstance(end.value, bool)
                ):
                    return None
                endpoints.append(end.value)
            edges.append((endpoints[0], endpoints[1]))
        return edges

    @staticmethod
    def _find_cycle(edges: Sequence[Tuple[object, object]]) -> Optional[List[object]]:
        """Return one cycle as a node list (closed), or None."""
        adjacency: Dict[object, List[object]] = {}
        for u, v in edges:
            adjacency.setdefault(u, []).append(v)
            adjacency.setdefault(v, [])
        white = sorted(adjacency, key=repr)
        color: Dict[object, int] = {n: 0 for n in white}  # 0 new, 1 active, 2 done
        parent: Dict[object, object] = {}
        for root in white:
            if color[root] != 0:
                continue
            stack: List[Tuple[object, int]] = [(root, 0)]
            color[root] = 1
            while stack:
                node, edge_index = stack[-1]
                successors = adjacency[node]
                if edge_index < len(successors):
                    stack[-1] = (node, edge_index + 1)
                    succ = successors[edge_index]
                    if color[succ] == 1:
                        cycle = [succ, node]
                        cursor = node
                        while cursor != succ:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        return cycle
                    if color[succ] == 0:
                        color[succ] = 1
                        parent[succ] = node
                        stack.append((succ, 0))
                else:
                    color[node] = 2
                    stack.pop()
        return None


# ----------------------------------------------------------------------
# MDL003 — alpha outside (0, 1]
# ----------------------------------------------------------------------


@register
class AlphaRangeRule(Rule):
    """MDL003: literal ``alpha`` keyword outside ``(0, 1]``."""

    rule_id = "MDL003"
    summary = (
        "alpha outside (0, 1] — the urgency-inversion parameter of Eq. 12 "
        "is a ratio of deadlines, positive and at most 1"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            value = _literal_number(_argument(node, "alpha", None))
            if value is None:
                continue
            if not (0.0 < value <= 1.0):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"alpha={value:g} is outside (0, 1] — Eq. 12's budget "
                    "alpha(1 - sum beta) needs 0 < alpha <= 1 "
                    "(deadline-monotonic attains alpha = 1)",
                )


# ----------------------------------------------------------------------
# MDL004 — blocking terms emptying the feasible region
# ----------------------------------------------------------------------


@register
class BlockingSumRule(Rule):
    """MDL004: literal blocking terms with ``sum beta_j >= 1``."""

    rule_id = "MDL004"
    summary = (
        "normalized blocking terms sum to >= 1 — Eq. 15's right-hand side "
        "alpha(1 - sum beta_j) becomes non-positive (empty feasible region)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            betas = _argument(node, "betas", None)
            total = self._blocking_sum(betas)
            if total is None:
                single = _literal_number(_argument(node, "beta", None))
                if single is not None and single >= 1.0:
                    total = single
            if total is not None and total >= 1.0:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"blocking terms sum to {total:g} >= 1, so Eq. 15's budget "
                    "alpha(1 - sum beta_j) is non-positive — the feasible region "
                    "is empty and every task set is rejected",
                )

    @staticmethod
    def _blocking_sum(node: Optional[ast.expr]) -> Optional[float]:
        if node is None:
            return None
        values = _literal_number_seq(node)
        if values is not None:
            return sum(values)
        if isinstance(node, ast.Dict):
            total = 0.0
            for value in node.values:
                number = _literal_number(value)
                if number is None:
                    return None
                total += number
            return total
        return None
