"""Bundled rule modules; importing this package registers every rule."""

from . import code, model  # noqa: F401 — import side effect registers rules

__all__ = ["code", "model"]
