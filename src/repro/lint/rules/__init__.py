"""Bundled rule modules; importing this package registers every rule."""

from . import async_rules, code, model, taint_rules  # noqa: F401 — import side effect registers rules

__all__ = ["async_rules", "code", "model", "taint_rules"]
