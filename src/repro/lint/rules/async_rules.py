"""Async-safety rules over the whole-program call graph.

The serving layer's latency story rests on the event loop never
stalling: the paper's stage service bound (the ``n_j/a_j`` term in
Eq. 12) models a stage that is *actually scheduled* — a gateway whose
loop is parked inside ``fsync`` for milliseconds silently violates the
service assumption every admitted task was tested against.  Two rules
mechanize that:

- ``ASY001`` — a blocking primitive (file I/O, ``time.sleep``,
  synchronous socket/subprocess calls) is *reachable* from an ``async
  def`` through any chain of synchronous project calls, with no
  executor hop in between.  A callable handed to
  ``loop.run_in_executor`` / ``asyncio.to_thread`` is a function
  *value*, not a call, so it creates no call edge — the hop breaks the
  chain by construction.
- ``ASY002`` — shared instance state (``self.*``) mutated on both
  sides of an ``await`` in one ``async def``.  Between the two
  mutations the loop may run any other coroutine; for the coming
  sharded server this is the classic check-then-act interleaving
  hazard.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from ..findings import Finding
from ..graph import FILE_TYPE, CallSite, FunctionInfo, ProjectContext
from ..registry import ProjectRule, register_project

__all__ = ["AsyncBlockingReachabilityRule", "AwaitInterleavingRule", "BLOCKING_CALLS"]

#: External callables that block the calling thread.  Keys are the
#: dotted call text the graph resolves (``<file>.*`` is the pseudo-type
#: given to ``open()`` results).  Values say *why* it blocks.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the whole event loop",
    "open": "synchronous file open",
    "os.fsync": "forces a disk flush",
    "os.fdatasync": "forces a disk flush",
    "os.replace": "synchronous rename",
    "os.rename": "synchronous rename",
    "os.unlink": "synchronous unlink",
    "os.remove": "synchronous unlink",
    "os.makedirs": "synchronous directory creation",
    "os.fdopen": "synchronous file open",
    "tempfile.mkstemp": "synchronous file creation",
    "tempfile.mkdtemp": "synchronous directory creation",
    "shutil.rmtree": "synchronous recursive delete",
    "shutil.copy": "synchronous file copy",
    "shutil.copyfile": "synchronous file copy",
    "subprocess.run": "blocks on a child process",
    "subprocess.check_output": "blocks on a child process",
    "subprocess.check_call": "blocks on a child process",
    "socket.create_connection": "synchronous connect",
    "urllib.request.urlopen": "synchronous network request",
    f"{FILE_TYPE}.write": "synchronous file write",
    f"{FILE_TYPE}.writelines": "synchronous file write",
    f"{FILE_TYPE}.flush": "synchronous file flush",
    f"{FILE_TYPE}.read": "synchronous file read",
    f"{FILE_TYPE}.readline": "synchronous file read",
    f"{FILE_TYPE}.readlines": "synchronous file read",
}

#: ``Path`` methods that hit the filesystem.  Matched on the *final*
#: attribute of an external dotted call whose base cannot be typed —
#: kept to names that are unambiguous file operations.
_PATH_IO_METHODS = frozenset(
    {"read_text", "write_text", "read_bytes", "write_bytes"}
)


def _blocking_reason(external: Optional[str]) -> Optional[str]:
    """Why an external call target blocks, or ``None`` if it does not."""
    if external is None:
        return None
    reason = BLOCKING_CALLS.get(external)
    if reason is not None:
        return reason
    tail = external.rsplit(".", 1)[-1]
    if tail in _PATH_IO_METHODS:
        return "synchronous file I/O"
    return None


def _display(qualname: str) -> str:
    """Short human-readable name: strip the package path, keep Class.m."""
    parts = qualname.split(".")
    if len(parts) >= 2 and parts[-2][:1].isupper():
        return ".".join(parts[-2:])
    return parts[-1]


@register_project
class AsyncBlockingReachabilityRule(ProjectRule):
    """ASY001: blocking call reachable from ``async def`` sans executor."""

    rule_id = "ASY001"
    summary = (
        "blocking primitive (file I/O, time.sleep, sync socket/subprocess) "
        "reachable from an async def through sync calls with no executor hop "
        "— the event loop stalls and the stage service bound is violated"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        #: qualname -> (chain of display names, primitive, reason) or None
        memo: Dict[str, Optional[Tuple[List[str], str, str]]] = {}

        def first_blocking(
            qualname: str, stack: Set[str]
        ) -> Optional[Tuple[List[str], str, str]]:
            """Shortest-discovered chain from ``qualname`` (a *sync*
            project function) to a blocking primitive, or None."""
            if qualname in memo:
                return memo[qualname]
            if qualname in stack:
                return None  # cycle: already being explored
            func = project.functions.get(qualname)
            if func is None or func.is_async:
                # Async callees are analyzed as their own roots; calls
                # into them suspend rather than block.
                memo[qualname] = None
                return None
            stack.add(qualname)
            found: Optional[Tuple[List[str], str, str]] = None
            for site in func.calls:
                reason = _blocking_reason(site.external)
                if reason is not None:
                    found = ([_display(qualname)], site.external or "", reason)
                    break
                for target in site.targets:
                    sub = first_blocking(target, stack)
                    if sub is not None:
                        found = ([_display(qualname), *sub[0]], sub[1], sub[2])
                        break
                if found is not None:
                    break
            stack.discard(qualname)
            memo[qualname] = found
            return found

        for func in project.iter_functions():
            if not func.is_async:
                continue
            ctx = project.ctx_for(func)
            reported: Set[Tuple[int, str]] = set()
            for site in func.calls:
                finding = None
                reason = _blocking_reason(site.external)
                if reason is not None:
                    finding = (site, [_display(func.qualname)], site.external or "", reason)
                else:
                    for target in site.targets:
                        chain = first_blocking(target, set())
                        if chain is not None:
                            finding = (
                                site,
                                [_display(func.qualname), *chain[0]],
                                chain[1],
                                chain[2],
                            )
                            break
                if finding is None:
                    continue
                site_obj, chain_names, primitive, why = finding
                key = (site_obj.node.lineno, primitive)
                if key in reported:
                    continue
                reported.add(key)
                chain_text = " -> ".join(chain_names)
                yield ctx.finding(
                    self.rule_id,
                    site_obj.node,
                    f"blocking call {primitive}() ({why}) is reachable from "
                    f"async `{func.name}` via {chain_text} with no executor "
                    "hop — offload with loop.run_in_executor or make the "
                    "chain async",
                )


# ----------------------------------------------------------------------
# ASY002 — shared-state mutation straddling an await
# ----------------------------------------------------------------------


def _mutation_root(node: ast.AST) -> Optional[str]:
    """Dotted ``self.``-rooted name a statement mutates, or None."""
    target: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        for t in node.targets:
            root = _target_root(t)
            if root is not None:
                return root
        return None
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        target = node.target
    elif isinstance(node, ast.Delete):
        for t in node.targets:
            root = _target_root(t)
            if root is not None:
                return root
        return None
    if target is not None:
        return _target_root(target)
    return None


#: Method names that mutate their receiver in place.
_MUTATING_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "add",
        "discard",
        "update",
        "setdefault",
        "move_to_end",
        "appendleft",
        "popleft",
        "sort",
    }
)


def _target_root(node: ast.expr) -> Optional[str]:
    """``self.x`` prefix of an assignment/del target, if any."""
    while isinstance(node, ast.Subscript):
        node = node.value
    dotted = _dotted_from(node)
    if dotted is not None and dotted.startswith("self.") and dotted.count(".") >= 1:
        # Root at the first attribute: self.x[...] and self.x.y both
        # mutate the shared object reachable through self.x.
        return ".".join(dotted.split(".")[:2])
    return None


def _dotted_from(node: ast.expr) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


@register_project
class AwaitInterleavingRule(ProjectRule):
    """ASY002: ``self.*`` state mutated on both sides of an ``await``."""

    rule_id = "ASY002"
    summary = (
        "shared instance state mutated both before and after an await in "
        "the same async function — another coroutine can observe (or race) "
        "the half-updated state at the suspension point"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for func in project.iter_functions():
            if not func.is_async or func.owner is None:
                continue
            ctx = project.ctx_for(func)
            mutations: List[Tuple[int, str, ast.AST]] = []
            awaits: List[int] = []
            for stmt in func.node.body:  # type: ignore[attr-defined]
                for node in ast.walk(stmt):
                    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        continue
                    if isinstance(node, ast.Await):
                        awaits.append(node.lineno)
                        continue
                    root = _mutation_root(node)
                    if root is None and isinstance(node, ast.Expr):
                        call = node.value
                        if (
                            isinstance(call, ast.Call)
                            and isinstance(call.func, ast.Attribute)
                            and call.func.attr in _MUTATING_METHODS
                        ):
                            root = _target_root(call.func.value)
                    if root is not None:
                        mutations.append((node.lineno, root, node))
            if not awaits or len(mutations) < 2:
                continue
            mutations.sort(key=lambda item: item[0])
            awaits.sort()
            reported: Set[str] = set()
            for i, (line_a, root, _node_a) in enumerate(mutations):
                if root in reported:
                    continue
                for line_b, root_b, node_b in mutations[i + 1 :]:
                    if root_b != root:
                        continue
                    if any(line_a <= aw <= line_b for aw in awaits):
                        reported.add(root)
                        yield ctx.finding(
                            self.rule_id,
                            node_b,
                            f"`{root}` is mutated on line {line_a} and again "
                            f"here with an await suspension in between "
                            f"(async `{func.name}`) — another coroutine can "
                            "interleave between the two mutations; make the "
                            "update atomic or guard it with a lock",
                        )
                        break
