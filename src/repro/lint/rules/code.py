"""Code rules: determinism and numeric-safety checks on the repo's own AST.

These rules mechanize the conventions the simulator and admission logic
depend on for reproducible acceptance-ratio curves:

- ``RNG001`` — every random draw must come from an explicitly seeded
  ``random.Random(seed)`` instance; the module-level RNG (or an
  unseeded/system RNG) makes runs unrepeatable.
- ``DET001`` — simulator event paths must not read wall clocks or feed
  event heaps from unordered set iteration; both inject ambient
  nondeterminism into event order.
- ``FLT001`` — raw ``==``/``!=`` between float-typed time/utilization
  expressions must route through :mod:`repro.core.numeric`
  (``approx_eq``/``EPS``); bitwise float equality on computed times
  silently flips admission and miss decisions.
- ``FLT002`` — raw ordered comparisons (``<``/``<=``/``>``/``>=``)
  against ``budget``/``deadline`` expressions must route through
  ``approx_le``/``approx_ge``; a task landing exactly on the region
  surface or its deadline boundary would otherwise be decided by the
  last ulp of an accumulated float sum.
- ``HEAP001`` — tuples pushed onto a heap need a monotonic tie-break
  field (a sequence counter or id) between the sort key and any
  payload, or equal keys fall through to comparing payloads —
  a crash for unorderable objects, nondeterminism otherwise.
- ``MUT001`` — mutable default arguments alias state across calls.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple, Union

from ..context import FileContext
from ..findings import Finding
from ..registry import Rule, register

__all__ = [
    "UnseededRandomRule",
    "AmbientNondeterminismRule",
    "FloatEqualityRule",
    "DeadlineBudgetComparisonRule",
    "HeapTieBreakRule",
    "MutableDefaultRule",
]

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Identifier of a Name, or attribute name of an Attribute."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _base_name(node: ast.AST) -> Optional[str]:
    """Left-most identifier of a dotted access (``a`` in ``a.b.c``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    return node.id if isinstance(node, ast.Name) else None


# ----------------------------------------------------------------------
# RNG001 — unseeded / module-level randomness
# ----------------------------------------------------------------------

#: Draw/seed functions of the module-level RNG that make runs
#: irreproducible when called on the ``random`` module itself.
_RNG_MODULE_FUNCS = frozenset(
    {
        "random",
        "uniform",
        "randint",
        "randrange",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "expovariate",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "betavariate",
        "gammavariate",
        "paretovariate",
        "vonmisesvariate",
        "weibullvariate",
        "triangular",
        "getrandbits",
        "seed",
    }
)


@register
class UnseededRandomRule(Rule):
    """RNG001: unseeded or module-level randomness in stochastic code."""

    rule_id = "RNG001"
    summary = (
        "random.Random() without a seed, random.SystemRandom, or module-level "
        "random.* draws — experiments must be replayable from an explicit seed"
    )
    scope = ("sim", "apps", "experiments")

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        aliases = self._random_module_aliases(ctx.tree)
        from_imports = self._names_imported_from_random(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and _base_name(func) in aliases:
                if func.attr == "Random" and not node.args and not node.keywords:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "random.Random() without a seed — pass an explicit seed "
                        "so runs are reproducible",
                    )
                elif func.attr == "SystemRandom":
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        "random.SystemRandom draws from OS entropy and can never "
                        "be replayed — use a seeded random.Random instead",
                    )
                elif func.attr in _RNG_MODULE_FUNCS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"module-level random.{func.attr}() uses the shared global "
                        "RNG — draw from a seeded random.Random instance",
                    )
            elif isinstance(func, ast.Name) and func.id in from_imports:
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"{func.id}() imported from the random module uses the shared "
                    "global RNG — draw from a seeded random.Random instance",
                )

    @staticmethod
    def _random_module_aliases(tree: ast.Module) -> Set[str]:
        aliases = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random":
                        aliases.add(alias.asname or alias.name)
        return aliases

    @staticmethod
    def _names_imported_from_random(tree: ast.Module) -> Set[str]:
        names = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                for alias in node.names:
                    if alias.name in _RNG_MODULE_FUNCS:
                        names.add(alias.asname or alias.name)
        return names


# ----------------------------------------------------------------------
# DET001 — wall clocks and unordered iteration in simulator event paths
# ----------------------------------------------------------------------

_TIME_MODULE_FUNCS = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _contains_heappush(nodes: List[ast.stmt]) -> Optional[ast.Call]:
    for stmt in nodes:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call) and _terminal_name(sub.func) == "heappush":
                return sub
    return None


@register
class AmbientNondeterminismRule(Rule):
    """DET001: ambient nondeterminism inside simulator event paths."""

    rule_id = "DET001"
    summary = (
        "wall-clock reads (time.time, datetime.now, ...) or set iteration "
        "feeding heapq.heappush — event order must be a function of the seed"
    )
    scope = ("sim",)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
                base = _base_name(node.func)
                attr = node.func.attr
                if base == "time" and attr in _TIME_MODULE_FUNCS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"time.{attr}() reads the wall clock — simulation time must "
                        "come from the event queue, not the host",
                    )
                elif base in ("datetime", "date") and attr in _DATETIME_FUNCS:
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"{base}.{attr}() reads the wall clock — simulation time must "
                        "come from the event queue, not the host",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if self._is_set_expr(node.iter):
                    push = _contains_heappush(node.body)
                    if push is not None:
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            "iterating a set to feed heapq.heappush — set order is "
                            "hash-randomized; sort the elements first",
                        )

    @staticmethod
    def _is_set_expr(node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")
        )


# ----------------------------------------------------------------------
# FLT001 — raw float equality between time/utilization expressions
# ----------------------------------------------------------------------

#: Identifier fragments marking a value as a time/utilization quantity.
#: Deliberately broad: in this codebase every one of these words names a
#: float accumulated through sums/divisions (deadlines, arrivals, costs,
#: synthetic utilizations, delay factors, blocking terms).
_FLOAT_VOCAB_RE = re.compile(
    r"deadline|period|arrival|expir|response|util|wcet|jitter|laten|budget"
    r"|slack|delay|blocking|beta|alpha|computation|time",
    re.IGNORECASE,
)


def _annotation_is_float(annotation: Optional[ast.expr]) -> bool:
    return isinstance(annotation, ast.Name) and annotation.id == "float"


class _ScopeTypes:
    """Names known (or strongly suspected) to hold float time values."""

    def __init__(self) -> None:
        self.float_names: Set[str] = set()

    def collect(self, scope: ast.AST) -> None:
        """Two passes so chained assignments (``b = a; c = b``) resolve."""
        if isinstance(scope, _SCOPE_NODES):
            for arg in self._all_args(scope):
                if _annotation_is_float(arg.annotation):
                    self.float_names.add(arg.arg)
        for _ in range(2):
            for stmt in self._own_statements(scope):
                self._collect_stmt(stmt)

    @staticmethod
    def _all_args(scope: _FunctionNode) -> List[ast.arg]:
        a = scope.args
        return [*a.posonlyargs, *a.args, *a.kwonlyargs]

    @staticmethod
    def _own_statements(scope: ast.AST) -> Iterator[ast.stmt]:
        """Statements of ``scope``, not descending into nested scopes."""
        todo: List[ast.stmt] = [
            c for c in ast.iter_child_nodes(scope) if isinstance(c, ast.stmt)
        ]
        while todo:
            stmt = todo.pop()
            if isinstance(stmt, _SCOPE_NODES + (ast.ClassDef,)):
                continue
            yield stmt
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.stmt):
                    todo.append(child)
                elif isinstance(getattr(child, "body", None), list):
                    # ExceptHandler, match_case
                    todo.extend(
                        s for s in getattr(child, "body") if isinstance(s, ast.stmt)
                    )

    def _collect_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            if self.is_float_expr(stmt.value):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.float_names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _annotation_is_float(stmt.annotation) or (
                stmt.value is not None and self.is_float_expr(stmt.value)
            ):
                self.float_names.add(stmt.target.id)
        elif isinstance(stmt, ast.AugAssign) and isinstance(stmt.target, ast.Name):
            if self.is_float_expr(stmt.value):
                self.float_names.add(stmt.target.id)

    def is_float_expr(self, node: ast.expr) -> bool:
        """Whether ``node`` looks like a float time/utilization value."""
        if isinstance(node, ast.Constant):
            return isinstance(node.value, float)
        if isinstance(node, ast.Name):
            return node.id in self.float_names or bool(_FLOAT_VOCAB_RE.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(_FLOAT_VOCAB_RE.search(node.attr))
        if isinstance(node, ast.Subscript):
            return self.is_float_expr(node.value)
        if isinstance(node, ast.BinOp):
            return self.is_float_expr(node.left) or self.is_float_expr(node.right)
        if isinstance(node, ast.UnaryOp):
            return self.is_float_expr(node.operand)
        if isinstance(node, ast.IfExp):
            return self.is_float_expr(node.body) or self.is_float_expr(node.orelse)
        if isinstance(node, ast.Call):
            func_name = _terminal_name(node.func)
            if func_name == "float":
                return True
            if func_name in ("abs", "min", "max", "sum"):
                return any(self.is_float_expr(arg) for arg in node.args)
        return False


def _is_exact_sentinel(node: ast.expr) -> bool:
    """Comparisons against these are exempt: int literals (0/1 sentinels
    for 'no cost'/'no stage'), None, bools, strings."""
    return isinstance(node, ast.Constant) and not isinstance(node.value, float)


@register
class FloatEqualityRule(Rule):
    """FLT001: raw ``==``/``!=`` between float time/utilization values."""

    rule_id = "FLT001"
    summary = (
        "raw ==/!= between float-typed time/utilization expressions — use "
        "repro.core.numeric.approx_eq (or an EPS-based comparison)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        yield from self._check_scope(ctx, ctx.tree)

    def _check_scope(self, ctx: FileContext, scope: ast.AST) -> Iterator[Finding]:
        types = _ScopeTypes()
        types.collect(scope)
        for node in self._own_nodes(scope):
            if isinstance(node, ast.Compare):
                yield from self._check_compare(ctx, node, types)
        for child in self._child_scopes(scope):
            yield from self._check_scope(ctx, child)

    @staticmethod
    def _own_nodes(scope: ast.AST) -> Iterator[ast.AST]:
        """Every node of ``scope`` once, not descending into nested
        function/class scopes (lambdas are treated as part of this scope)."""
        todo = list(ast.iter_child_nodes(scope))
        while todo:
            node = todo.pop()
            if isinstance(node, _SCOPE_NODES + (ast.ClassDef,)):
                continue
            yield node
            todo.extend(ast.iter_child_nodes(node))

    @staticmethod
    def _child_scopes(scope: ast.AST) -> Iterator[_FunctionNode]:
        """Direct child function scopes (descending through classes)."""
        todo = list(ast.iter_child_nodes(scope))
        while todo:
            node = todo.pop()
            if isinstance(node, _SCOPE_NODES):
                yield node
            elif not isinstance(node, ast.Lambda):
                todo.extend(ast.iter_child_nodes(node))

    def _check_compare(
        self, ctx: FileContext, node: ast.Compare, types: _ScopeTypes
    ) -> Iterator[Finding]:
        left = node.left
        for op, right in zip(node.ops, node.comparators):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                if not _is_exact_sentinel(left) and not _is_exact_sentinel(right):
                    if types.is_float_expr(left) and types.is_float_expr(right):
                        symbol = "==" if isinstance(op, ast.Eq) else "!="
                        yield ctx.finding(
                            self.rule_id,
                            node,
                            f"raw `{symbol}` between float time/utilization values "
                            f"({ast.unparse(left)} {symbol} {ast.unparse(right)}) — "
                            "use repro.core.numeric.approx_eq",
                        )
            left = right


# ----------------------------------------------------------------------
# FLT002 — raw ordered comparisons against budget/deadline expressions
# ----------------------------------------------------------------------

#: Identifier fragments marking an admission-boundary quantity: the
#: region budget and (absolute/relative) deadlines.  Kept narrow on
#: purpose — these are the comparisons where a boundary-landing task
#: flips between admit/reject or hit/miss on the last ulp.
_BOUNDARY_VOCAB_RE = re.compile(r"budget|deadline", re.IGNORECASE)


def _mentions_boundary_quantity(node: ast.expr) -> bool:
    """Whether any identifier inside ``node`` names a budget/deadline."""
    for sub in ast.walk(node):
        name = _terminal_name(sub)
        if name is not None and _BOUNDARY_VOCAB_RE.search(name):
            return True
    return False


@register
class DeadlineBudgetComparisonRule(Rule):
    """FLT002: raw ordered comparison against a budget/deadline value."""

    rule_id = "FLT002"
    summary = (
        "raw </<=/>/>= against a budget or deadline expression — use "
        "repro.core.numeric.approx_le/approx_ge so boundary-landing tasks "
        "are decided by tolerance, not by the last ulp of a float sum"
    )

    _SYMBOLS = {ast.Lt: "<", ast.LtE: "<=", ast.Gt: ">", ast.GtE: ">="}

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                symbol = self._SYMBOLS.get(type(op))
                if (
                    symbol is not None
                    and not _is_exact_sentinel(left)
                    and not _is_exact_sentinel(right)
                    and (
                        _mentions_boundary_quantity(left)
                        or _mentions_boundary_quantity(right)
                    )
                ):
                    yield ctx.finding(
                        self.rule_id,
                        node,
                        f"raw `{symbol}` against a budget/deadline value "
                        f"({ast.unparse(left)} {symbol} {ast.unparse(right)}) — "
                        "use repro.core.numeric.approx_le/approx_ge",
                    )
                left = right


# ----------------------------------------------------------------------
# HEAP001 — heap tuples without a monotonic tie-break field
# ----------------------------------------------------------------------

#: Identifier components that look like a monotonic tie-break/sequence
#: field.  Split on underscores, so ``task_id`` and ``_seq`` qualify.
_TIEBREAK_COMPONENTS = frozenset(
    {"seq", "sequence", "tie", "tiebreak", "count", "counter", "version", "token", "idx", "index", "id"}
)


def _is_tiebreak_element(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is not None:
        components = {c for c in name.lower().split("_") if c}
        return bool(components & _TIEBREAK_COMPONENTS)
    if isinstance(node, ast.Call):
        func_name = _terminal_name(node.func)
        if func_name is not None and (
            func_name == "next" or bool({c for c in func_name.lower().split("_") if c} & _TIEBREAK_COMPONENTS)
        ):
            return True
    return isinstance(node, ast.Starred)  # can't see inside — don't flag


@register
class HeapTieBreakRule(Rule):
    """HEAP001: heappush of tuples lacking a monotonic tie-break field."""

    rule_id = "HEAP001"
    summary = (
        "heapq.heappush of a tuple with no sequence/tie-break field — equal "
        "keys fall through to comparing payloads (crash or nondeterminism)"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Call) and _terminal_name(node.func) == "heappush"):
                continue
            if len(node.args) < 2:
                continue
            item = node.args[1]
            if not isinstance(item, ast.Tuple) or len(item.elts) < 2:
                continue
            if not any(_is_tiebreak_element(elt) for elt in item.elts[1:]):
                yield ctx.finding(
                    self.rule_id,
                    node,
                    f"heap entry {ast.unparse(item)} has no monotonic tie-break "
                    "field after the sort key — insert a sequence counter "
                    "(e.g. (key, seq, payload)) so ties never compare payloads",
                )


# ----------------------------------------------------------------------
# MUT001 — mutable default arguments
# ----------------------------------------------------------------------


def _is_mutable_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "bytearray", "defaultdict", "deque")
    )


@register
class MutableDefaultRule(Rule):
    """MUT001: mutable default argument values."""

    rule_id = "MUT001"
    summary = (
        "mutable default argument (list/dict/set literal or constructor) — "
        "the default is shared across every call"
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, _SCOPE_NODES + (ast.Lambda,)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_literal(default):
                    name = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        self.rule_id,
                        default,
                        f"mutable default {ast.unparse(default)} in {name}() is "
                        "evaluated once and shared across calls — default to None "
                        "and construct inside the body",
                    )
