"""Determinism-taint and exactness rules over the call graph.

The repo's end-to-end guarantee is that admission decisions, journal
records, and snapshots are *bitwise reproducible*: recovery replays the
journal through a fresh core and must land on an identical fingerprint,
and the batching layer promises byte-equality with sequential
processing.  Three rule families guard the code paths that promise
rests on:

- ``DET101`` — a **nondeterministic value** (wall clock, unseeded RNG,
  ``os.urandom``, ``id()``/``hash()``, pids, uuids) flows into a
  canonical serialization sink: the wire encoders, the write-ahead
  journal, or snapshot/fingerprint construction.  Intraprocedural
  dataflow (see :mod:`repro.lint.taint`) with sinks resolved through
  the project call graph, so ``line.encode("utf-8")`` (str method)
  never false-positives against :func:`repro.serve.protocol.encode`.
- ``DET102`` — **nondeterministic order**: iterating a set (literal,
  constructor, or set-typed attribute/parameter) feeds the same sinks.
  ``sorted(...)`` launders order taint — order is exactly what it
  fixes — while value taint survives it.
- ``EXS001`` — raw float ``+=`` / ``-=`` on a utilization-like
  accumulator attribute.  Float accumulation is order-dependent and
  drifts; the tracker's ``U_j(t)`` bookkeeping must route through
  :class:`repro.core.numeric.ExactSum` (exact, invertible,
  order-independent) or the recovered sum depends on replay order.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, Optional, Set

from ..findings import Finding
from ..graph import SET_TYPE, FunctionInfo, ModuleInfo, ProjectContext
from ..registry import ProjectRule, register_project
from ..taint import UNORDERED_LABEL, analyze_function

__all__ = [
    "DeterminismValueTaintRule",
    "DeterminismOrderTaintRule",
    "FloatAccumulatorRule",
    "NONDET_SOURCE_CALLS",
    "SINK_FUNCTION_NAMES",
]

#: Dotted call expressions that produce a nondeterministic *value*.
NONDET_SOURCE_CALLS: Dict[str, str] = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "monotonic-clock read",
    "time.monotonic_ns": "monotonic-clock read",
    "time.perf_counter": "performance-counter read",
    "time.perf_counter_ns": "performance-counter read",
    "datetime.now": "wall-clock read",
    "datetime.utcnow": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "date.today": "wall-clock read",
    "os.urandom": "OS entropy",
    "os.getpid": "process id",
    "uuid.uuid1": "host/time-derived uuid",
    "uuid.uuid4": "random uuid",
    "secrets.token_hex": "OS entropy",
    "secrets.token_bytes": "OS entropy",
    "secrets.token_urlsafe": "OS entropy",
    "id": "object address (varies per run)",
    "hash": "hash-randomized value (PYTHONHASHSEED)",
}

#: Module-level ``random.*`` draws (the shared, unseeded global RNG).
_GLOBAL_RNG_RE = re.compile(
    r"^random\.(random|uniform|randint|randrange|choice|choices|shuffle|sample|"
    r"expovariate|gauss|normalvariate|getrandbits)$"
)

#: Final names of *project-resolved* functions that canonically
#: serialize state: wire responses, journal records, snapshots,
#: fingerprints.  Matching requires the call to resolve to a project
#: function — a bare ``.encode("utf-8")`` on a string never matches.
SINK_FUNCTION_NAMES = frozenset(
    {
        "encode",
        "canonical_encode",
        "ok_response",
        "admit_response",
        "error_response",
        "encode_record",
        "record_crc",
        "gateway_snapshot",
        "write_gateway_snapshot",
        "controller_snapshot",
        "registry_fingerprint",
        "_canonical",
    }
)


def _source_label(node: ast.expr) -> Optional[str]:
    """Label for nondeterministic-value source expressions."""
    if not isinstance(node, ast.Call):
        return None
    parts = []
    func = node.func
    while isinstance(func, ast.Attribute):
        parts.append(func.attr)
        func = func.value
    if isinstance(func, ast.Name):
        parts.append(func.id)
    dotted = ".".join(reversed(parts))
    if dotted in NONDET_SOURCE_CALLS:
        return f"{dotted}() [{NONDET_SOURCE_CALLS[dotted]}]"
    if _GLOBAL_RNG_RE.match(dotted):
        return f"{dotted}() [shared global RNG]"
    return None


def _sink_classifier(project: ProjectContext, func: FunctionInfo):
    """Build an ``is_sink`` callback resolving through the call graph."""
    sites = {id(site.node): site for site in func.calls}

    def is_sink(node: ast.Call) -> Optional[str]:
        site = sites.get(id(node))
        if site is None:
            return None
        for target in site.targets:
            parts = target.split(".")
            name = parts[-1]
            if name in SINK_FUNCTION_NAMES:
                return name
            if name == "append" and len(parts) >= 2 and "journal" in parts[-2].lower():
                return f"{parts[-2]}.append"
        return None

    return is_sink


@register_project
class DeterminismValueTaintRule(ProjectRule):
    """DET101: nondeterministic value reaching a serialization sink."""

    rule_id = "DET101"
    summary = (
        "wall-clock / unseeded-RNG / entropy / id() value flowing into "
        "canonical encoding, the write-ahead journal, or a snapshot — the "
        "bitwise-reproducibility contract of the serve layer breaks"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for func in project.iter_functions():
            ctx = project.ctx_for(func)
            is_sink = _sink_classifier(project, func)
            for hit in analyze_function(func.node, _source_label, is_sink):
                yield ctx.finding(
                    self.rule_id,
                    hit.sink_node,
                    f"nondeterministic source {hit.source_label} from line "
                    f"{hit.source_line} flows into serialization sink "
                    f"`{hit.sink_label}` — recovered/replayed state can no "
                    "longer be bitwise identical; derive the value from the "
                    "request stream or a seeded RNG instead",
                )


@register_project
class DeterminismOrderTaintRule(ProjectRule):
    """DET102: unordered set iteration feeding a serialization sink."""

    rule_id = "DET102"
    summary = (
        "iteration order of a set (hash-randomized across runs) flowing "
        "into canonical encoding / journal / snapshot construction — sort "
        "before serializing"
    )

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for func in project.iter_functions():
            ctx = project.ctx_for(func)
            is_sink = _sink_classifier(project, func)

            def order_source(node: ast.expr) -> Optional[str]:
                if isinstance(node, (ast.Set, ast.SetComp)):
                    return UNORDERED_LABEL
                if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                    if node.func.id in ("set", "frozenset"):
                        return UNORDERED_LABEL
                    return None
                if isinstance(node, (ast.Name, ast.Attribute)):
                    if project.expr_type(func, node) == SET_TYPE:
                        return UNORDERED_LABEL
                return None

            for hit in analyze_function(func.node, order_source, is_sink):
                # Only *order* taint counts here; a set wrapped in
                # sorted() was laundered inside the engine already.
                if hit.kind != UNORDERED_LABEL:
                    continue
                yield ctx.finding(
                    self.rule_id,
                    hit.sink_node,
                    f"set iteration order from line {hit.source_line} flows "
                    f"into serialization sink `{hit.sink_label}` — set order "
                    "is hash-randomized across processes; sort the elements "
                    "before they reach canonical output",
                )


# ----------------------------------------------------------------------
# EXS001 — float accumulation bypassing ExactSum
# ----------------------------------------------------------------------

#: Attribute-name fragments that mark a cross-task accumulator the
#: exactness contract covers.  Deliberately narrow: per-event counters
#: (``self.retries += 1``) and per-job metrics stay out.
_ACCUMULATOR_VOCAB_RE = re.compile(
    r"util|usage|busy|contrib|synthetic|beta|load_sum|sum_|_sum\b|_total\b",
    re.IGNORECASE,
)


def _is_int_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, int) and not isinstance(node.value, bool)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return _is_int_literal(node.operand)
    return False


@register_project
class FloatAccumulatorRule(ProjectRule):
    """EXS001: raw float ``+=``/``-=`` on a utilization-like attribute."""

    rule_id = "EXS001"
    summary = (
        "raw float += / -= on a utilization-like accumulator attribute — "
        "float accumulation is order-dependent and drifts under add/remove "
        "churn; route the sum through repro.core.numeric.ExactSum"
    )

    #: Packages whose accumulator state feeds U_j(t) bookkeeping.
    _SCOPE = ("core", "sim", "serve")

    def check_project(self, project: ProjectContext) -> Iterator[Finding]:
        for cls in project.iter_classes():
            module = project.modules[cls.module]
            if not module.ctx.in_scope(self._SCOPE):
                continue
            for _name, method in sorted(cls.methods.items()):
                for stmt in method.node.body:  # type: ignore[attr-defined]
                    for node in ast.walk(stmt):
                        if not isinstance(node, ast.AugAssign):
                            continue
                        if not isinstance(node.op, (ast.Add, ast.Sub)):
                            continue
                        target = node.target
                        if not (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            continue
                        if not _ACCUMULATOR_VOCAB_RE.search(target.attr):
                            continue
                        if _is_int_literal(node.value):
                            continue  # integer event counter
                        op = "+=" if isinstance(node.op, ast.Add) else "-="
                        yield module.ctx.finding(
                            self.rule_id,
                            node,
                            f"`self.{target.attr} {op} {ast.unparse(node.value)}` "
                            f"accumulates floats directly in {cls.name} — the "
                            "running sum depends on arrival order and drifts "
                            "on removal; use repro.core.numeric.ExactSum "
                            "(exact, invertible, order-independent)",
                        )
        for func in project.iter_functions():
            module = project.modules[func.module]
            if not module.ctx.in_scope(self._SCOPE):
                continue
            yield from self._check_local_accumulators(module, func)

    def _check_local_accumulators(
        self, module: ModuleInfo, func: FunctionInfo
    ) -> Iterator[Finding]:
        """Flag loop-carried float ``+=``/``-=`` on accumulator-named locals.

        The attribute pass above catches object state; this pass catches
        the same defect inside a single function body — e.g. the original
        ``region_budget`` summing ``total_beta += float(b)`` over a loop,
        where the result depends on iteration order.  Only augmented
        assignments lexically inside a ``for``/``while`` are loop-carried
        sums; a one-shot adjustment outside a loop is not order-dependent.
        """
        seen: Set[int] = set()
        for loop in ast.walk(func.node):
            if not isinstance(loop, (ast.For, ast.AsyncFor, ast.While)):
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.AugAssign) or id(node) in seen:
                    continue
                seen.add(id(node))
                if not isinstance(node.op, (ast.Add, ast.Sub)):
                    continue
                target = node.target
                if not isinstance(target, ast.Name):
                    continue
                if not _ACCUMULATOR_VOCAB_RE.search(target.id):
                    continue
                if _is_int_literal(node.value):
                    continue  # integer event counter
                op = "+=" if isinstance(node.op, ast.Add) else "-="
                yield module.ctx.finding(
                    self.rule_id,
                    node,
                    f"`{target.id} {op} {ast.unparse(node.value)}` "
                    f"accumulates floats in a loop in {func.name} — the "
                    "running sum depends on iteration order; use math.fsum "
                    "over the sequence or repro.core.numeric.ExactSum",
                )
