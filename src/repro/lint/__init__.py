"""Domain-aware static analysis for the feasible-region reproduction.

An AST-based analyzer with a pluggable rule registry and two rule
kinds: per-file rules and whole-program rules over a project-wide
symbol table and call graph (:mod:`repro.lint.graph`) with a
lightweight intraprocedural taint pass (:mod:`repro.lint.taint`).

**Code rules** enforce the determinism and numeric-safety conventions
the simulator and admission logic rely on (``RNG001`` seeded RNGs,
``DET001`` no ambient nondeterminism in event paths, ``FLT001`` no raw
float equality on time values, ``HEAP001`` heap tie-breaks, ``MUT001``
no mutable defaults).

**Model rules** statically validate task-set/DAG/experiment constructor
literals against the paper's preconditions (``MDL001`` ``C_ij <= D_i``,
``MDL002`` acyclic task graphs, ``MDL003`` ``alpha in (0, 1]``,
``MDL004`` ``sum beta_j < 1``).

**Whole-program rules** see across files: ``ASY001`` blocking calls
reachable from ``async def`` through sync call chains with no executor
hop, ``ASY002`` shared state mutated on both sides of an ``await``,
``DET101``/``DET102`` nondeterministic values / set iteration order
flowing into canonical serialization, and ``EXS001`` raw float
accumulation that should route through ``ExactSum``.

Run as ``python -m repro.lint [paths] [--format=text|json|sarif]``;
suppress individual findings with a ``# repro: noqa[RULE]`` comment on
the offending line (stale suppressions are flagged as ``SUP001``).
``--baseline`` ratchets CI on new findings only.  Exit code is 1 when
findings are reported.
"""

from .baseline import apply_baseline, fingerprint, load_baseline, write_baseline
from .context import FileContext
from .findings import Finding
from .graph import ProjectContext, module_name_for
from .registry import (
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    get_rule,
    known_rule_ids,
    register,
    register_project,
    rule_ids,
)
from .runner import (
    SUPPRESSION_RULE_ID,
    SYNTAX_RULE_ID,
    analyze_paths,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from .sarif import render_sarif, to_sarif

__all__ = [
    "FileContext",
    "Finding",
    "ProjectContext",
    "ProjectRule",
    "Rule",
    "register",
    "register_project",
    "all_rules",
    "all_project_rules",
    "get_rule",
    "rule_ids",
    "known_rule_ids",
    "module_name_for",
    "SYNTAX_RULE_ID",
    "SUPPRESSION_RULE_ID",
    "analyze_paths",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "write_baseline",
    "render_sarif",
    "to_sarif",
]
