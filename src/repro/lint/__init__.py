"""Domain-aware static analysis for the feasible-region reproduction.

An AST-based lint pass with a pluggable rule registry and two rule
families:

**Code rules** enforce the determinism and numeric-safety conventions
the simulator and admission logic rely on (``RNG001`` seeded RNGs,
``DET001`` no ambient nondeterminism in event paths, ``FLT001`` no raw
float equality on time values, ``HEAP001`` heap tie-breaks, ``MUT001``
no mutable defaults).

**Model rules** statically validate task-set/DAG/experiment constructor
literals against the paper's preconditions (``MDL001`` ``C_ij <= D_i``,
``MDL002`` acyclic task graphs, ``MDL003`` ``alpha in (0, 1]``,
``MDL004`` ``sum beta_j < 1``).

Run as ``python -m repro.lint [paths] [--format=json|text]``; suppress
individual findings with a ``# repro: noqa[RULE]`` comment on the
offending line.  Exit code is 1 when findings are reported.
"""

from .context import FileContext
from .findings import Finding
from .registry import Rule, all_rules, get_rule, register, rule_ids
from .runner import (
    SYNTAX_RULE_ID,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "register",
    "all_rules",
    "get_rule",
    "rule_ids",
    "SYNTAX_RULE_ID",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
]
