"""Project-wide symbol table and call graph for whole-program rules.

The per-file rules (PR 1) see one AST at a time, so they cannot tell
that a blocking ``fsync`` *reaches* the event loop through three frames
of sync helpers, or that a wall-clock read flows into the canonical
wire encoding two calls later.  This module gives rules that visibility:

:class:`ProjectContext`
    Parses every file once (reusing the runner's
    :class:`~repro.lint.context.FileContext`), assigns dotted module
    names, and builds a symbol table of top-level functions, classes,
    methods, and imports per module.

Call resolution
    Each function body is linked into a call graph.  Calls are
    resolved through: plain names (module functions, imported
    symbols), ``self.method()`` (including inherited project bases),
    ``self.attr.method()`` via *annotated or inferred attribute
    types* (``self.journal = journal`` with ``journal: Journal``
    resolves to ``Journal``), parameters with project-class
    annotations, local variables bound to constructor calls, and
    ``typing.Protocol`` receivers, which fan out to every project
    class that structurally implements the protocol (defines all of
    its method names).  File handles returned by ``open()`` get the
    ``<file>`` pseudo-type so ``handle.write(...)`` is recognizable
    as real I/O.  Unresolvable calls keep their dotted source text as
    an *external* target (``time.sleep``, ``os.fsync``) for the
    async-safety rule's blocking-primitive table.

Known, documented blind spots (the engine over-approximates where it
can and stays silent where it cannot): ``getattr``-style dynamic
dispatch, calls through containers, and functions passed as values
(which is exactly why a callable handed to ``loop.run_in_executor``
creates **no** call edge — the executor hop breaks the chain by
construction).

Everything is deterministic: modules, symbols, and edges are stored
and traversed in sorted order, so findings built on top of the graph
are byte-stable across runs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from .context import FileContext

__all__ = [
    "FILE_TYPE",
    "SET_TYPE",
    "CallSite",
    "FunctionInfo",
    "ClassInfo",
    "ModuleInfo",
    "ProjectContext",
    "module_name_for",
]

#: Pseudo-type assigned to values produced by the ``open()`` builtin;
#: method calls on it (``.write``, ``.flush``) resolve to external
#: targets like ``<file>.write`` so rules can classify them as I/O.
FILE_TYPE = "<file>"

#: Pseudo-type for ``set()`` / ``frozenset()`` values and ``set``
#: annotations — the determinism rules treat iterating one as an
#: unordered source.
SET_TYPE = "<set>"

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def module_name_for(path: Path) -> str:
    """Dotted module name of ``path`` derived from package structure.

    Walks up while the parent directory holds an ``__init__.py`` —
    ``src/repro/serve/gateway.py`` becomes ``repro.serve.gateway``.  A
    file outside any package (a benchmark, an example, a fixture
    snippet) is named by its stem alone.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.insert(0, parent.name)
        parent = parent.parent
    return ".".join(parts) if parts else path.stem


@dataclass
class CallSite:
    """One resolved call expression inside a function body.

    Attributes:
        node: The ``ast.Call`` node (for finding locations).
        targets: Qualified names of project functions this call may
            dispatch to (several for protocol receivers).
        external: Dotted name of a non-project callee (``time.sleep``,
            ``open``, ``<file>.write``) when no project target resolved.
    """

    node: ast.Call
    targets: Tuple[str, ...] = ()
    external: Optional[str] = None


@dataclass
class FunctionInfo:
    """One function or method known to the project symbol table."""

    qualname: str
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    path: str
    is_async: bool
    owner: Optional[str] = None  # owning class qualname, if a method
    calls: List[CallSite] = field(default_factory=list)


@dataclass
class ClassInfo:
    """One class: methods, resolved bases, and attribute types."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)
    bases: List[str] = field(default_factory=list)
    is_protocol: bool = False

    def protocol_method_names(self) -> List[str]:
        """Plain (non-property) method names a protocol declares."""
        names = []
        for name, info in sorted(self.methods.items()):
            decorators = getattr(info.node, "decorator_list", [])
            if any(_is_property_decorator(d) for d in decorators):
                continue
            names.append(name)
        return names


def _is_property_decorator(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "property"
    if isinstance(node, ast.Attribute):
        return node.attr in ("setter", "getter", "deleter")
    return False


@dataclass
class ModuleInfo:
    """One parsed module and its top-level symbols."""

    name: str
    path: str
    ctx: FileContext
    imports: Dict[str, str] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)


def _dotted(node: ast.expr) -> Optional[str]:
    """Source-level dotted name of ``a.b.c`` expressions, else None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _unwrap_annotation(node: ast.expr) -> Optional[ast.expr]:
    """Strip ``Optional[X]`` / ``"X"`` wrappers down to the named type."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Subscript):
        base = _dotted(node.value)
        if base and base.split(".")[-1] in ("Optional", "Union"):
            inner = node.slice
            if isinstance(inner, ast.Tuple):
                for elt in inner.elts:
                    if not (isinstance(elt, ast.Constant) and elt.value is None):
                        return _unwrap_annotation(elt)
                return None
            return _unwrap_annotation(inner)
        if base and base.split(".")[-1] in ("Set", "FrozenSet"):
            return node.value  # the container itself is the receiver type
        return None  # List[X], Dict[..] — containers, not receivers
    return node


class ProjectContext:
    """Whole-program symbol table + call graph over a set of files.

    Args:
        files: ``(path, FileContext)`` pairs — every parsed file of the
            analysis run.  Files that failed to parse are simply absent
            (the runner reports those separately as ``SYN000``).
    """

    def __init__(self, files: Sequence[Tuple[Path, FileContext]]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self._ctx_by_path: Dict[str, FileContext] = {}
        self._local_types_cache: Dict[str, Dict[str, str]] = {}
        for path, ctx in sorted(files, key=lambda item: str(item[0])):
            self._add_module(Path(path), ctx)
        self._link_all()

    # -- construction --------------------------------------------------

    def _add_module(self, path: Path, ctx: FileContext) -> None:
        name = module_name_for(path)
        if name in self.modules:  # two non-package files with one stem
            suffix = 2
            while f"{name}#{suffix}" in self.modules:
                suffix += 1
            name = f"{name}#{suffix}"
        module = ModuleInfo(name=name, path=str(path), ctx=ctx)
        self.modules[name] = module
        self._ctx_by_path[str(path)] = ctx
        for stmt in module.ctx.tree.body:
            self._collect_top_level(module, stmt)

    def _collect_top_level(self, module: ModuleInfo, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Import):
            for alias in stmt.names:
                local = alias.asname or alias.name.split(".")[0]
                module.imports[local] = alias.name if alias.asname else alias.name.split(".")[0]
                if alias.asname is None and "." in alias.name:
                    # ``import a.b`` binds ``a``; record the full path
                    # too so ``a.b.f()`` resolves through the root.
                    module.imports[alias.name.split(".")[0]] = alias.name.split(".")[0]
        elif isinstance(stmt, ast.ImportFrom):
            base = self._resolve_from_import(module, stmt)
            for alias in stmt.names:
                if alias.name == "*":
                    continue
                module.imports[alias.asname or alias.name] = f"{base}.{alias.name}"
        elif isinstance(stmt, _FUNC_NODES):
            info = FunctionInfo(
                qualname=f"{module.name}.{stmt.name}",
                module=module.name,
                name=stmt.name,
                node=stmt,
                path=module.path,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
            )
            module.functions[stmt.name] = info
            self.functions[info.qualname] = info
        elif isinstance(stmt, ast.ClassDef):
            self._collect_class(module, stmt)
        elif isinstance(stmt, (ast.If, ast.Try)):
            # TYPE_CHECKING guards and optional-import fallbacks.
            for sub in ast.iter_child_nodes(stmt):
                if isinstance(sub, ast.stmt):
                    self._collect_top_level(module, sub)

    @staticmethod
    def _resolve_from_import(module: ModuleInfo, stmt: ast.ImportFrom) -> str:
        if stmt.level == 0:
            return stmt.module or ""
        package_parts = module.name.split(".")[:-1]  # containing package
        ascend = stmt.level - 1
        base_parts = package_parts[: len(package_parts) - ascend] if ascend else package_parts
        if stmt.module:
            base_parts = base_parts + stmt.module.split(".")
        return ".".join(base_parts)

    def _collect_class(self, module: ModuleInfo, stmt: ast.ClassDef) -> None:
        info = ClassInfo(
            qualname=f"{module.name}.{stmt.name}",
            module=module.name,
            name=stmt.name,
            node=stmt,
        )
        for base in stmt.bases:
            dotted = _dotted(base)
            if dotted is None and isinstance(base, ast.Subscript):
                dotted = _dotted(base.value)  # Protocol[...] / Generic[T]
            if dotted is None:
                continue
            info.bases.append(dotted)
            if dotted.split(".")[-1] == "Protocol":
                info.is_protocol = True
        for body_stmt in stmt.body:
            if isinstance(body_stmt, _FUNC_NODES):
                method = FunctionInfo(
                    qualname=f"{info.qualname}.{body_stmt.name}",
                    module=module.name,
                    name=body_stmt.name,
                    node=body_stmt,
                    path=module.path,
                    is_async=isinstance(body_stmt, ast.AsyncFunctionDef),
                    owner=info.qualname,
                )
                info.methods[body_stmt.name] = method
                self.functions[method.qualname] = method
            elif isinstance(body_stmt, ast.AnnAssign) and isinstance(
                body_stmt.target, ast.Name
            ):
                resolved = self._resolve_type_expr(module, body_stmt.annotation)
                if resolved:
                    info.attr_types[body_stmt.target.id] = resolved
        module.classes[stmt.name] = info
        self.classes[info.qualname] = info

    # -- symbol / type resolution --------------------------------------

    def _lookup(self, dotted: str) -> Optional[str]:
        """Qualified name of a project symbol named by ``dotted``."""
        if dotted in self.functions or dotted in self.classes or dotted in self.modules:
            return dotted
        return None

    def _resolve_symbol(self, module: ModuleInfo, name: str) -> Optional[str]:
        """Resolve a bare name used in ``module`` to a qualified name.

        Project symbols win; an import of an external module/symbol
        returns its dotted source name (still useful as an *external*
        target).  Returns None for unknown locals.
        """
        if name in module.functions:
            return module.functions[name].qualname
        if name in module.classes:
            return module.classes[name].qualname
        if name in module.imports:
            target = module.imports[name]
            return self._lookup(target) or target
        return None

    def _resolve_type_expr(self, module: ModuleInfo, node: ast.expr) -> Optional[str]:
        """Resolve an annotation / constructor expression to a type name."""
        unwrapped = _unwrap_annotation(node)
        if unwrapped is None:
            return None
        dotted = _dotted(unwrapped)
        if dotted is None:
            return None
        if dotted in ("set", "frozenset") or dotted.split(".")[-1] in ("Set", "FrozenSet"):
            return SET_TYPE
        head, _, rest = dotted.partition(".")
        resolved_head = self._resolve_symbol(module, head)
        if resolved_head is None:
            return dotted
        return f"{resolved_head}.{rest}" if rest else resolved_head

    def _class_by_name(self, qualname: Optional[str]) -> Optional[ClassInfo]:
        if qualname is None:
            return None
        return self.classes.get(qualname)

    def _mro(self, cls: ClassInfo) -> List[ClassInfo]:
        """The class plus its resolvable project bases (cycle-safe)."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        todo = [cls]
        while todo:
            current = todo.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            module = self.modules[current.module]
            for base in current.bases:
                resolved = self._resolve_type_expr(module, ast.parse(base, mode="eval").body)
                base_cls = self._class_by_name(resolved)
                if base_cls is not None:
                    todo.append(base_cls)
        return out

    def _find_method(self, cls: ClassInfo, name: str) -> Optional[FunctionInfo]:
        for candidate in self._mro(cls):
            if name in candidate.methods:
                return candidate.methods[name]
        return None

    def protocol_implementers(self, protocol: ClassInfo) -> List[ClassInfo]:
        """Project classes structurally implementing ``protocol``.

        A class implements the protocol when it defines (or inherits)
        every plain method the protocol declares.  Protocol classes
        themselves are excluded.
        """
        wanted = protocol.protocol_method_names()
        if not wanted:
            return []
        out = []
        for qualname in sorted(self.classes):
            cls = self.classes[qualname]
            if cls.is_protocol or qualname == protocol.qualname:
                continue
            if all(self._find_method(cls, name) is not None for name in wanted):
                out.append(cls)
        return out

    # -- call-graph linking --------------------------------------------

    def _link_all(self) -> None:
        # Attribute types first: linking ``self.journal.append()`` in one
        # method needs the ``self.journal = journal`` binding from
        # ``__init__`` already resolved.
        for qualname in sorted(self.classes):
            self._infer_attr_types(self.classes[qualname])
        for qualname in sorted(self.functions):
            self._link_function(self.functions[qualname])

    def _infer_attr_types(self, cls: ClassInfo) -> None:
        """Harvest ``self.attr`` types from the constructor body.

        Three shapes, in priority order (class-body ``AnnAssign``
        entries collected earlier always win): ``self.x: T = ...``,
        ``self.x = param`` with an annotated parameter, and
        ``self.x = Ctor()`` / ``open()`` / ``set()`` constructor calls.
        """
        init = cls.methods.get("__init__")
        if init is None:
            return
        module = self.modules[cls.module]
        local_types = self._infer_local_types(init, module, cls)
        for node in self._body_nodes(init):
            attr: Optional[str] = None
            inferred: Optional[str] = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    inferred = self._resolve_type_expr(module, node.annotation)
            elif isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    attr = target.attr
                    inferred = self._infer_value_type(
                        node.value, module, cls, local_types
                    )
            if attr is not None and inferred and attr not in cls.attr_types:
                cls.attr_types[attr] = inferred

    @staticmethod
    def _body_nodes(func: FunctionInfo) -> Iterator[ast.AST]:
        """Every node of the function, *including* nested def/lambda
        bodies — a nested helper is part of the enclosing behavior
        (over-approximation, documented in the module docstring)."""
        for stmt in func.node.body:  # type: ignore[attr-defined]
            yield from ast.walk(stmt)

    def _link_function(self, func: FunctionInfo) -> None:
        module = self.modules[func.module]
        owner = self._class_by_name(func.owner)
        local_types = self._infer_local_types(func, module, owner)
        for node in self._body_nodes(func):
            if isinstance(node, ast.Call):
                func.calls.append(
                    self._resolve_call(node, module, owner, local_types)
                )

    def _infer_local_types(
        self,
        func: FunctionInfo,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
    ) -> Dict[str, str]:
        """Parameter annotations + obvious constructor-call locals."""
        types: Dict[str, str] = {}
        args = func.node.args  # type: ignore[attr-defined]
        for arg in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if arg.annotation is not None:
                resolved = self._resolve_type_expr(module, arg.annotation)
                if resolved:
                    types[arg.arg] = resolved
        for node in self._body_nodes(func):
            target: Optional[str] = None
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and isinstance(
                node.targets[0], ast.Name
            ):
                target, value = node.targets[0].id, node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                resolved = self._resolve_type_expr(module, node.annotation)
                if resolved:
                    types[node.target.id] = resolved
                continue
            if target is None or value is None:
                continue
            inferred = self._infer_value_type(value, module, owner, types)
            if inferred:
                types[target] = inferred
        return types

    def _infer_value_type(
        self,
        value: ast.expr,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        local_types: Dict[str, str],
    ) -> Optional[str]:
        if isinstance(value, (ast.Set, ast.SetComp)):
            return SET_TYPE
        if isinstance(value, ast.Call):
            dotted = _dotted(value.func)
            if dotted == "open":
                return FILE_TYPE
            if dotted in ("set", "frozenset"):
                return SET_TYPE
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                resolved = self._resolve_symbol(module, head)
                if resolved is not None and not rest:
                    if resolved in self.classes:
                        return resolved
                if resolved in self.modules and rest:
                    candidate = f"{resolved}.{rest}"
                    if candidate in self.classes:
                        return candidate
            return None
        if isinstance(value, ast.Attribute):
            return self._receiver_type(value, module, owner, local_types)
        if isinstance(value, ast.Name):
            return local_types.get(value.id)
        if isinstance(value, ast.IfExp):
            return self._infer_value_type(
                value.body, module, owner, local_types
            ) or self._infer_value_type(value.orelse, module, owner, local_types)
        return None

    def _receiver_type(
        self,
        node: ast.expr,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        local_types: Dict[str, str],
    ) -> Optional[str]:
        """Type of the *object* a method is called on (``a.b`` in
        ``a.b.m()``), resolved through attribute-type annotations."""
        if isinstance(node, ast.Name):
            if node.id == "self" and owner is not None:
                return owner.qualname
            return local_types.get(node.id)
        if isinstance(node, ast.Attribute):
            base_type = self._receiver_type(node.value, module, owner, local_types)
            base_cls = self._class_by_name(base_type)
            if base_cls is None:
                return None
            for candidate in self._mro(base_cls):
                if node.attr in candidate.attr_types:
                    return candidate.attr_types[node.attr]
            return None
        if isinstance(node, ast.Call):
            return self._infer_value_type(node, module, owner, local_types)
        return None

    def _resolve_call(
        self,
        node: ast.Call,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        local_types: Dict[str, str],
    ) -> CallSite:
        func = node.func
        if isinstance(func, ast.Name):
            resolved = self._resolve_symbol(module, func.id)
            if resolved is None:
                return CallSite(node=node, external=func.id)
            if resolved in self.functions:
                return CallSite(node=node, targets=(resolved,))
            cls = self.classes.get(resolved)
            if cls is not None:
                init = self._find_method(cls, "__init__")
                return CallSite(
                    node=node, targets=(init.qualname,) if init else ()
                )
            return CallSite(node=node, external=resolved)
        if isinstance(func, ast.Attribute):
            return self._resolve_method_call(node, func, module, owner, local_types)
        return CallSite(node=node)

    def _resolve_method_call(
        self,
        node: ast.Call,
        func: ast.Attribute,
        module: ModuleInfo,
        owner: Optional[ClassInfo],
        local_types: Dict[str, str],
    ) -> CallSite:
        # Module-qualified call: ``mod.func()`` / ``pkg.mod.func()``.
        dotted = _dotted(func)
        if dotted is not None:
            head, _, rest = dotted.partition(".")
            resolved_head = self._resolve_symbol(module, head)
            if resolved_head in self.modules and rest:
                candidate = f"{resolved_head}.{rest}"
                if candidate in self.functions:
                    return CallSite(node=node, targets=(candidate,))
                if candidate in self.classes:
                    init = self._find_method(self.classes[candidate], "__init__")
                    return CallSite(
                        node=node, targets=(init.qualname,) if init else ()
                    )
        # Method on a typed receiver.
        receiver = self._receiver_type(func.value, module, owner, local_types)
        if receiver == FILE_TYPE:
            return CallSite(node=node, external=f"{FILE_TYPE}.{func.attr}")
        receiver_cls = self._class_by_name(receiver)
        if receiver_cls is not None:
            targets: List[str] = []
            if receiver_cls.is_protocol:
                for impl in self.protocol_implementers(receiver_cls):
                    method = self._find_method(impl, func.attr)
                    if method is not None:
                        targets.append(method.qualname)
                own = self._find_method(receiver_cls, func.attr)
                if own is not None and not targets:
                    targets.append(own.qualname)
            else:
                method = self._find_method(receiver_cls, func.attr)
                if method is not None:
                    targets.append(method.qualname)
            if targets:
                return CallSite(node=node, targets=tuple(sorted(set(targets))))
        if dotted is not None:
            # Keep the raw dotted text (``time.sleep``, ``os.fsync``) —
            # the blocking-primitive table keys off it.
            head = dotted.partition(".")[0]
            external = module.imports.get(head)
            if external is not None and external == head:
                return CallSite(node=node, external=dotted)
            return CallSite(node=node, external=dotted)
        return CallSite(node=node)

    # -- queries --------------------------------------------------------

    def ctx_for(self, func: FunctionInfo) -> FileContext:
        return self._ctx_by_path[func.path]

    def expr_type(self, func: FunctionInfo, node: ast.expr) -> Optional[str]:
        """Best-effort static type of an expression inside ``func``.

        Resolves parameter/attribute annotations, constructor calls,
        and the ``<file>`` / ``<set>`` pseudo-types.  ``None`` when the
        engine cannot tell.
        """
        module = self.modules[func.module]
        owner = self._class_by_name(func.owner)
        local_types = self._local_types_cache.get(func.qualname)
        if local_types is None:
            local_types = self._infer_local_types(func, module, owner)
            self._local_types_cache[func.qualname] = local_types
        resolved = self._receiver_type(node, module, owner, local_types)
        if resolved is not None:
            return resolved
        return self._infer_value_type(node, module, owner, local_types)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """Every known function, in sorted qualname order."""
        for qualname in sorted(self.functions):
            yield self.functions[qualname]

    def iter_classes(self) -> Iterator[ClassInfo]:
        for qualname in sorted(self.classes):
            yield self.classes[qualname]

    def resolve_targets(self, func: FunctionInfo, node: ast.Call) -> Tuple[str, ...]:
        """Project targets recorded for a specific call node."""
        for site in func.calls:
            if site.node is node:
                return site.targets
        return ()
