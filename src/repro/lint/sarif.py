"""SARIF 2.1.0 serialization of analyzer findings.

One static schema, no external dependencies: the subset of SARIF that
code-scanning UIs (GitHub, VS Code SARIF viewer) actually read —
``tool.driver.rules`` metadata plus ``results`` with physical
locations.  Output is byte-deterministic: rules and results are sorted,
and the JSON uses sorted keys nowhere (key order is authored, stable).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List

from .findings import Finding
from .registry import all_project_rules, all_rules

__all__ = ["SARIF_VERSION", "to_sarif", "render_sarif"]

SARIF_VERSION = "2.1.0"
_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Synthetic rules the registry does not know (see the runner).
_PSEUDO_RULES = {
    "SYN000": "file does not parse",
    "SUP001": "noqa suppression that no longer suppresses anything",
}

#: Findings of these rules are reported at SARIF level ``error``.
_ERROR_RULES = frozenset({"SYN000"})


def _rule_catalog() -> List[Dict[str, Any]]:
    catalog: Dict[str, str] = dict(_PSEUDO_RULES)
    for rule in all_rules():
        catalog[rule.rule_id] = rule.summary
    for prule in all_project_rules():
        catalog[prule.rule_id] = prule.summary
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {
                "level": "error" if rule_id in _ERROR_RULES else "warning"
            },
        }
        for rule_id, summary in sorted(catalog.items())
    ]


def to_sarif(findings: Iterable[Finding]) -> Dict[str, Any]:
    """Build the SARIF log object for ``findings``."""
    rules = _rule_catalog()
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = []
    for finding in sorted(findings):
        result: Dict[str, Any] = {
            "ruleId": finding.rule,
            "level": "error" if finding.rule in _ERROR_RULES else "warning",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": finding.path.replace("\\", "/"),
                        },
                        "region": {
                            "startLine": finding.line,
                            "startColumn": finding.col + 1,
                        },
                    }
                }
            ],
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": _SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }


def render_sarif(findings: Iterable[Finding]) -> str:
    """Serialize findings to a SARIF JSON string (trailing newline)."""
    return json.dumps(to_sarif(findings), indent=2) + "\n"
