"""Finding baseline: ratchet CI on *new* findings only.

A baseline file records fingerprints of findings the project has
accepted (or not yet paid down).  CI runs the analyzer with
``--baseline lint-baseline.json``: findings matching a baselined
fingerprint are filtered, anything else fails the build.  The ratchet
is one-way — ``--write-baseline`` regenerates the file from the
current findings, so paying down a finding *expires* its entry and it
can never silently return.

Fingerprints are ``path|rule|message`` (no line number), so moving
code around a file does not churn the baseline; per-fingerprint
*counts* keep multiple identical findings in one file honest.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple, Union

from .findings import Finding

__all__ = [
    "BASELINE_VERSION",
    "BaselineResult",
    "fingerprint",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
]

#: Schema version of the baseline JSON payload.
BASELINE_VERSION = 1


def fingerprint(finding: Finding) -> str:
    """Stable identity of a finding: ``path|rule|message``.

    Line numbers are deliberately excluded so unrelated edits above a
    finding do not expire its baseline entry.
    """
    return f"{finding.path}|{finding.rule}|{finding.message}"


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline.

    Attributes:
        new: Findings not covered by the baseline — these fail CI.
        suppressed: Findings absorbed by a baseline entry.
        expired: ``fingerprint -> count`` of baseline capacity that no
            current finding used; the entries are stale and
            ``--write-baseline`` would drop them.
    """

    new: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    expired: Dict[str, int] = field(default_factory=dict)


def load_baseline(path: Union[str, Path]) -> Dict[str, int]:
    """Load ``fingerprint -> count`` from a baseline file.

    Raises:
        ValueError: On a malformed payload or unknown schema version.
    """
    raw = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(raw, dict) or raw.get("version") != BASELINE_VERSION:
        raise ValueError(f"unsupported baseline file: {path}")
    entries = raw.get("entries")
    if not isinstance(entries, dict):
        raise ValueError(f"baseline file has no entries mapping: {path}")
    out: Dict[str, int] = {}
    for key, count in entries.items():
        if not isinstance(key, str) or not isinstance(count, int) or count < 1:
            raise ValueError(f"malformed baseline entry {key!r}: {count!r}")
        out[key] = count
    return out


def apply_baseline(
    findings: Iterable[Finding], baseline: Dict[str, int]
) -> BaselineResult:
    """Split findings into new vs. baselined; report expired capacity.

    The first ``count`` findings matching a fingerprint are suppressed;
    any surplus (a regression adding one *more* of the same defect) is
    new and fails.
    """
    remaining = dict(baseline)
    result = BaselineResult()
    for finding in findings:
        key = fingerprint(finding)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            result.suppressed.append(finding)
        else:
            result.new.append(finding)
    result.expired = {key: count for key, count in sorted(remaining.items()) if count > 0}
    return result


def write_baseline(path: Union[str, Path], findings: Iterable[Finding]) -> Dict[str, int]:
    """Write a baseline file covering exactly ``findings``.

    Returns the entry mapping that was written.  The payload is
    byte-deterministic (sorted keys, fixed indentation) so the file
    diffs cleanly in review.
    """
    entries: Dict[str, int] = {}
    for finding in sorted(findings):
        key = fingerprint(finding)
        entries[key] = entries.get(key, 0) + 1
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Accepted lint findings; regenerate with "
            "`python -m repro.lint --write-baseline --baseline <this file>`. "
            "New findings not listed here fail CI."
        ),
        "entries": dict(sorted(entries.items())),
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=False) + "\n", encoding="utf-8"
    )
    return entries


def split_expired(expired: Dict[str, int]) -> List[Tuple[str, str, str, int]]:
    """Decompose expired fingerprints into ``(path, rule, message, count)``."""
    out = []
    for key, count in sorted(expired.items()):
        path, rule, message = key.split("|", 2)
        out.append((path, rule, message, count))
    return out
