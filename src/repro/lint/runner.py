"""File discovery and rule execution.

Two entry points:

- :func:`lint_paths` / :func:`lint_file` / :func:`lint_source` — the
  per-file pass only (PR-1 behavior, kept for embedding and for
  snippets with no project around them).
- :func:`analyze_paths` — the whole-program pass: parses every file
  once, runs the per-file rules, builds a
  :class:`~repro.lint.graph.ProjectContext` over everything that
  parsed, runs the registered project rules (call-graph reachability,
  taint), and finally reports ``noqa`` comments that suppressed
  nothing (:data:`SUPPRESSION_RULE_ID`).
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .context import FileContext
from .findings import Finding
from .graph import ProjectContext
from .registry import all_project_rules, all_rules

__all__ = [
    "SYNTAX_RULE_ID",
    "SUPPRESSION_RULE_ID",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "lint_paths",
    "analyze_paths",
]

#: Pseudo-rule id used for files that fail to parse.
SYNTAX_RULE_ID = "SYN000"

#: Pseudo-rule id for a ``repro: noqa`` comment that suppressed no
#: finding of any rule that ran.  Emitted only on *full* runs (no
#: ``--select`` / ``--ignore``), because a narrowed run cannot tell a
#: stale suppression from one whose rule was simply not executed.
#: Like :data:`SYNTAX_RULE_ID` it is synthetic and cannot itself be
#: noqa-suppressed.
SUPPRESSION_RULE_ID = "SUP001"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".mypy_cache", ".ruff_cache"})


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Skips cache directories, hidden directories, and ``*.egg-info``
    trees.  Yields in sorted order for deterministic reports.

    Raises:
        FileNotFoundError: If a given path does not exist.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(
                part in _SKIP_DIRS or part.endswith(".egg-info") or part.startswith(".")
                for part in parts[:-1]
            ):
                continue
            yield candidate


def _syntax_finding(path: str, exc: SyntaxError) -> Finding:
    return Finding(
        path=path,
        line=exc.lineno or 1,
        col=(exc.offset or 1) - 1,
        rule=SYNTAX_RULE_ID,
        message=f"file does not parse: {exc.msg}",
    )


def lint_source(
    source: str,
    path: str = "<snippet>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string; the workhorse behind file and path APIs.

    Args:
        source: Python source text.
        path: Label used in findings and for directory-scope decisions.
        select: Optional rule-id allowlist.
        ignore: Optional rule-id denylist.

    Returns:
        Sorted findings, noqa suppressions already applied.  A syntax
        error yields a single :data:`SYNTAX_RULE_ID` finding.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [_syntax_finding(path, exc)]
    findings: List[Finding] = []
    for rule in all_rules(select=select, ignore=ignore):
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    return sorted(ctx.filter_suppressed(findings))


def lint_file(
    path: Path,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select, ignore=ignore)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (per-file rules only)."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select, ignore=ignore))
    return sorted(findings)


def analyze_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
    project: bool = True,
) -> List[Finding]:
    """Whole-program analysis over every Python file under ``paths``.

    Runs the per-file rules, then (when ``project`` is true) builds one
    :class:`ProjectContext` spanning every file that parsed and runs
    the registered project rules — so a blocking ``fsync`` three sync
    frames below an ``async def`` in *another file* is still found.
    ``# repro: noqa[RULE]`` suppression applies to both passes.

    On a full run (no ``select``/``ignore``) each file's noqa comments
    are audited afterwards: an entry that suppressed nothing produces a
    :data:`SUPPRESSION_RULE_ID` finding, so stale suppressions cannot
    silently accumulate.

    Returns:
        Sorted findings across all files and both passes.
    """
    contexts: List[Tuple[Path, FileContext]] = []
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        try:
            ctx = FileContext(str(file_path), source)
        except SyntaxError as exc:
            findings.append(_syntax_finding(str(file_path), exc))
            continue
        contexts.append((file_path, ctx))

    ctx_by_path: Dict[str, FileContext] = {str(p): c for p, c in contexts}

    file_rules = all_rules(select=select, ignore=ignore)
    project_rules = all_project_rules(select=select, ignore=ignore) if project else []

    for _path, ctx in contexts:
        per_file: List[Finding] = []
        for rule in file_rules:
            if rule.applies_to(ctx):
                per_file.extend(rule.check(ctx))
        findings.extend(ctx.filter_suppressed(per_file))

    if project_rules:
        project_ctx = ProjectContext(contexts)
        for prule in project_rules:
            for finding in prule.check_project(project_ctx):
                ctx = ctx_by_path.get(finding.path)
                if ctx is not None and ctx.suppressed(finding.rule, finding.line):
                    continue
                findings.append(finding)

    full_run = select is None and not ignore and project
    if full_run:
        for _path, ctx in contexts:
            for line, rule in ctx.unused_suppressions():
                label = "every rule" if rule == "*" else rule
                findings.append(
                    Finding(
                        path=ctx.path,
                        line=line,
                        col=0,
                        rule=SUPPRESSION_RULE_ID,
                        message=(
                            f"noqa suppression for {label} is unused — no "
                            "finding on this line needed it; delete the "
                            "comment or qualify it with the right rule id"
                        ),
                    )
                )

    return sorted(findings)
