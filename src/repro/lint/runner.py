"""File discovery and rule execution."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence

from .context import FileContext
from .findings import Finding
from .registry import Rule, all_rules

__all__ = ["SYNTAX_RULE_ID", "iter_python_files", "lint_source", "lint_file", "lint_paths"]

#: Pseudo-rule id used for files that fail to parse.
SYNTAX_RULE_ID = "SYN000"

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hypothesis", ".pytest_cache", ".mypy_cache", ".ruff_cache"})


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Yield every ``.py`` file under ``paths`` (files or directories).

    Skips cache directories, hidden directories, and ``*.egg-info``
    trees.  Yields in sorted order for deterministic reports.

    Raises:
        FileNotFoundError: If a given path does not exist.
    """
    for raw in paths:
        path = Path(raw)
        if not path.exists():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.parts
            if any(
                part in _SKIP_DIRS or part.endswith(".egg-info") or part.startswith(".")
                for part in parts[:-1]
            ):
                continue
            yield candidate


def lint_source(
    source: str,
    path: str = "<snippet>",
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one source string; the workhorse behind file and path APIs.

    Args:
        source: Python source text.
        path: Label used in findings and for directory-scope decisions.
        select: Optional rule-id allowlist.
        ignore: Optional rule-id denylist.

    Returns:
        Sorted findings, noqa suppressions already applied.  A syntax
        error yields a single :data:`SYNTAX_RULE_ID` finding.
    """
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=SYNTAX_RULE_ID,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    findings: List[Finding] = []
    for rule in all_rules(select=select, ignore=ignore):
        if rule.applies_to(ctx):
            findings.extend(rule.check(ctx))
    return sorted(ctx.filter_suppressed(findings))


def lint_file(
    path: Path,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one file from disk."""
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), select=select, ignore=ignore)


def lint_paths(
    paths: Sequence[str],
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths``; returns sorted findings."""
    findings: List[Finding] = []
    for file_path in iter_python_files(paths):
        findings.extend(lint_file(file_path, select=select, ignore=ignore))
    return sorted(findings)
