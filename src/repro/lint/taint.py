"""Lightweight intraprocedural taint/dataflow over one function body.

The determinism rules need to know whether a value *derived from* a
nondeterministic source (a wall-clock read, an unseeded draw, ``id()``)
reaches a serialization sink (canonical encoding, the write-ahead
journal, a snapshot).  Full interprocedural dataflow is out of scope;
what admission-control code actually does — read a source into a local,
arithmetic on it, build a dict, pass it to ``encode`` — is covered by a
simple forward pass:

- A **source** is an expression the rule classifies (a callback returns
  a human-readable label, e.g. ``"time.time()"``, or ``None``).
- Assignments propagate taint to their targets; two passes resolve
  chains written out of order.  Containers, f-strings, arithmetic,
  comparisons, subscripts, and attribute access on a tainted base all
  propagate.
- ``sorted(...)`` and friends do **not** launder value taint (sorting a
  timestamp does not make it deterministic) — but *order* taint (see
  ``unordered_iter``) is laundered by sorting, because order is exactly
  what sorting fixes.
- A **sink** is a call the rule classifies (via the project call graph
  or a name table); any tainted argument produces a hit.

The pass is deliberately conservative in both directions and documented
as such: it does not follow taint through ``self`` attributes across
methods, nor through return values of project calls.  Those are the
engine's known blind spots; the rules it powers guard the paths that
matter (wire encoding, journal, snapshots) where the flow is local.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple

__all__ = ["TaintHit", "analyze_function", "UNORDERED_LABEL"]

#: Label attached to loop variables bound by iterating an unordered
#: collection (a set); sorting launders it.
UNORDERED_LABEL = "unordered"

#: Builtins that establish a deterministic order: passing an
#: order-tainted value through them clears *order* taint only.
_ORDER_LAUNDERING = frozenset({"sorted", "min", "max", "len", "sum"})


@dataclass(frozen=True)
class TaintHit:
    """One tainted value reaching a sink.

    Attributes:
        sink_node: The sink call expression.
        sink_label: Human-readable sink name (``"encode"``).
        source_label: What tainted the value (``"time.time()"``).
        source_line: Line the taint was introduced on.
        kind: ``"value"`` or :data:`UNORDERED_LABEL`.
    """

    sink_node: ast.Call
    sink_label: str
    source_label: str
    source_line: int
    kind: str = "value"


#: taint state per name: (source_label, source_line, kind)
_Taint = Tuple[str, int, str]

SourceFn = Callable[[ast.expr], Optional[str]]
SinkFn = Callable[[ast.Call], Optional[str]]


class _FunctionTaint(ast.NodeVisitor):
    def __init__(self, is_source: SourceFn, is_sink: SinkFn) -> None:
        self.is_source = is_source
        self.is_sink = is_sink
        self.tainted: Dict[str, _Taint] = {}
        self.hits: List[TaintHit] = []
        self._collect_hits = False

    # -- expression taint ----------------------------------------------

    def taint_of(self, node: ast.expr) -> Optional[_Taint]:
        source = self.is_source(node)
        if source is not None:
            kind = UNORDERED_LABEL if source == UNORDERED_LABEL else "value"
            return (source, node.lineno, kind)
        if isinstance(node, ast.Name):
            return self.tainted.get(node.id)
        if isinstance(node, ast.Attribute):
            return self.taint_of(node.value)
        if isinstance(node, ast.Subscript):
            return self.taint_of(node.value)
        if isinstance(node, ast.Starred):
            return self.taint_of(node.value)
        if isinstance(node, (ast.BinOp,)):
            return self.taint_of(node.left) or self.taint_of(node.right)
        if isinstance(node, ast.BoolOp):
            return _first(self.taint_of(v) for v in node.values)
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, ast.Compare):
            return self.taint_of(node.left) or _first(
                self.taint_of(c) for c in node.comparators
            )
        if isinstance(node, ast.IfExp):
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            return _first(self.taint_of(e) for e in node.elts)
        if isinstance(node, ast.Dict):
            return _first(
                self.taint_of(part)
                for part in [*[k for k in node.keys if k is not None], *node.values]
            )
        if isinstance(node, ast.JoinedStr):
            return _first(
                self.taint_of(v.value)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            )
        if isinstance(node, ast.FormattedValue):
            return self.taint_of(node.value)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self.taint_of(node.elt) or _first(
                self.taint_of(gen.iter) for gen in node.generators
            )
        if isinstance(node, ast.DictComp):
            return (
                self.taint_of(node.key)
                or self.taint_of(node.value)
                or _first(self.taint_of(gen.iter) for gen in node.generators)
            )
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.Await):
            return self.taint_of(node.value)
        return None

    def _call_taint(self, node: ast.Call) -> Optional[_Taint]:
        """Taint of a call's result: any tainted argument taints it,
        except order-laundering builtins which clear *order* taint."""
        launders_order = (
            isinstance(node.func, ast.Name) and node.func.id in _ORDER_LAUNDERING
        )
        for arg in [*node.args, *[kw.value for kw in node.keywords]]:
            taint = self.taint_of(arg)
            if taint is None:
                continue
            if launders_order and taint[2] == UNORDERED_LABEL:
                continue
            return taint
        # Method result on a tainted receiver stays tainted
        # (``now.hex()``); order taint does not survive a method hop.
        if isinstance(node.func, ast.Attribute):
            taint = self.taint_of(node.func.value)
            if taint is not None and taint[2] != UNORDERED_LABEL:
                return taint
        return None

    # -- statement walk -------------------------------------------------

    def visit_Assign(self, node: ast.Assign) -> None:
        taint = self.taint_of(node.value)
        for target in node.targets:
            self._bind(target, taint)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._bind(node.target, self.taint_of(node.value))
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        taint = self.taint_of(node.value)
        if taint is not None:
            self._bind(node.target, taint)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._bind_loop(node.target, node.iter)
        self.generic_visit(node)

    def visit_AsyncFor(self, node: ast.AsyncFor) -> None:
        self._bind_loop(node.target, node.iter)
        self.generic_visit(node)

    def visit_comprehension_generators(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self._bind_loop(gen.target, gen.iter)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_generators(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_generators(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_generators(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_generators(node)
        self.generic_visit(node)

    def _bind_loop(self, target: ast.expr, iterable: ast.expr) -> None:
        taint = self.taint_of(iterable)
        self._bind(target, taint)

    def _bind(self, target: ast.expr, taint: Optional[_Taint]) -> None:
        if isinstance(target, ast.Name):
            if taint is not None:
                self.tainted[target.id] = taint
            else:
                self.tainted.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._bind(elt, taint)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, taint)
        # Attribute/subscript targets: no tracking (self.* is cross-
        # method state, out of intraprocedural scope).

    def visit_Call(self, node: ast.Call) -> None:
        if self._collect_hits:
            sink = self.is_sink(node)
            if sink is not None:
                for arg in [*node.args, *[kw.value for kw in node.keywords]]:
                    taint = self.taint_of(arg)
                    if taint is not None:
                        label, line, kind = taint
                        self.hits.append(
                            TaintHit(
                                sink_node=node,
                                sink_label=sink,
                                source_label=label,
                                source_line=line,
                                kind=kind,
                            )
                        )
                        break
        self.generic_visit(node)

    # Nested defs keep their own dataflow; do not descend.
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        pass

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        pass

    def visit_Lambda(self, node: ast.Lambda) -> None:
        pass


def _first(items: Iterator[Optional[_Taint]]) -> Optional[_Taint]:
    for item in items:
        if item is not None:
            return item
    return None


def analyze_function(
    func_node: ast.AST,
    is_source: SourceFn,
    is_sink: SinkFn,
) -> List[TaintHit]:
    """Run the taint pass over one function body.

    Args:
        func_node: A ``FunctionDef`` / ``AsyncFunctionDef`` node.
        is_source: Classifier returning a label for source expressions.
        is_sink: Classifier returning a label for sink call nodes.

    Returns:
        Hits in source order (stable across runs).
    """
    walker = _FunctionTaint(is_source, is_sink)
    # Two propagation passes resolve chained assignments written out of
    # order; the final pass collects sink hits against the fixpoint.
    for collect in (False, False, True):
        walker._collect_hits = collect
        walker.hits = []
        for stmt in func_node.body:  # type: ignore[attr-defined]
            walker.visit(stmt)
    walker.hits.sort(key=lambda hit: (hit.sink_node.lineno, hit.sink_node.col_offset))
    return walker.hits
