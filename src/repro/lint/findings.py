"""Finding type shared by every lint rule and output format."""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Dict, Union

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location.

    Ordering is (path, line, col, rule) so reports are stable across
    runs and dict/set iteration orders — the linter holds itself to the
    determinism it enforces.

    Attributes:
        path: File the finding was raised in (as given to the runner).
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule identifier, e.g. ``"RNG001"``.
        message: Human-readable explanation with concrete values.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def to_dict(self) -> Dict[str, Union[str, int]]:
        """JSON-serializable representation (stable key order)."""
        return asdict(self)

    def render(self) -> str:
        """One-line text rendering: ``path:line:col: RULE message``."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"
