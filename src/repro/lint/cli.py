"""Command-line interface: ``python -m repro.lint [paths]``.

Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.

The default run is the *whole-program* pass: per-file rules plus the
call-graph / taint rules over one project context, plus the
unused-suppression audit.  ``--no-project`` restores the PR-1 per-file
behavior.  ``--baseline FILE`` filters findings recorded in a
committed baseline (only *new* findings affect the exit code);
``--write-baseline`` regenerates that file from the current findings.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .baseline import apply_baseline, load_baseline, split_expired, write_baseline
from .findings import Finding
from .registry import all_project_rules, all_rules, known_rule_ids
from .runner import analyze_paths, iter_python_files
from .sarif import render_sarif

__all__ = ["main", "build_parser"]

#: Schema version of the ``--format=json`` payload.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Domain-aware static analysis for the feasible-region reproduction: "
            "determinism (RNG001/DET001/DET101/DET102), numeric safety "
            "(FLT001/HEAP001/MUT001/EXS001), async safety over the project "
            "call graph (ASY001/ASY002), and model invariants (MDL001-MDL004). "
            "Suppress a finding with '# repro: noqa[RULE]' on the offending "
            "line; unused suppressions are themselves flagged (SUP001)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--sarif",
        action="store_true",
        help="shorthand for --format sarif",
    )
    parser.add_argument(
        "--out",
        metavar="FILE",
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=(
            "baseline file of accepted findings; matching findings are "
            "filtered and only new ones affect the exit code"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="regenerate --baseline FILE from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-project",
        action="store_true",
        help="per-file rules only (skip call-graph/taint rules and SUP001)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip().upper() for token in raw.split(",") if token.strip()]


def _render_text(findings: List[Finding], files_checked: int, stream) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    noun = "file" if files_checked == 1 else "files"
    if findings:
        print(
            f"{len(findings)} finding(s) in {files_checked} {noun}.",
            file=stream,
        )
    else:
        print(f"{files_checked} {noun} checked, no findings.", file=stream)


def _render_json(findings: List[Finding], files_checked: int, stream) -> None:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
    }
    json.dump(payload, stream, indent=2, sort_keys=False)
    print(file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all code"
            print(f"{rule.rule_id}  [file]     [{scope}]  {rule.summary}")
        for prule in all_project_rules():
            print(f"{prule.rule_id}  [project]  [all code]  {prule.summary}")
        return 0

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]

    fmt = "sarif" if args.sarif else args.format

    try:
        select = _split_rules(args.select)
        ignore = _split_rules(args.ignore)
        files_checked = sum(1 for _ in iter_python_files(paths))
        findings = analyze_paths(
            paths, select=select, ignore=ignore, project=not args.no_project
        )
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(
            f"error: {exc.args[0]}; known rules: {', '.join(known_rule_ids())}",
            file=sys.stderr,
        )
        return 2

    if args.write_baseline:
        entries = write_baseline(args.baseline, findings)
        print(
            f"wrote baseline {args.baseline}: {sum(entries.values())} finding(s) "
            f"across {len(entries)} fingerprint(s)",
            file=sys.stderr,
        )
        return 0

    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot load baseline: {exc}", file=sys.stderr)
            return 2
        result = apply_baseline(findings, baseline)
        findings = result.new
        for path, rule, _message, count in split_expired(result.expired):
            print(
                f"note: baseline entry for {rule} in {path} is stale "
                f"({count} unmatched) — regenerate with --write-baseline",
                file=sys.stderr,
            )

    if args.out:
        stream = open(args.out, "w", encoding="utf-8")
    else:
        stream = sys.stdout
    try:
        if fmt == "sarif":
            stream.write(render_sarif(findings))
        elif fmt == "json":
            _render_json(findings, files_checked, stream)
        else:
            _render_text(findings, files_checked, stream)
    finally:
        if args.out:
            stream.close()
    return 1 if findings else 0
