"""Command-line interface: ``python -m repro.lint [paths]``.

Exit codes: 0 clean, 1 findings reported, 2 usage or I/O error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Finding
from .registry import all_rules, rule_ids
from .runner import iter_python_files, lint_paths

__all__ = ["main", "build_parser"]

#: Schema version of the ``--format=json`` payload.
JSON_SCHEMA_VERSION = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Domain-aware static analysis for the feasible-region reproduction: "
            "determinism (RNG001/DET001), numeric safety (FLT001/HEAP001/MUT001), "
            "and model invariants (MDL001-MDL004).  Suppress a finding with "
            "'# repro: noqa[RULE]' on the offending line."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/ if present, else .)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_rules(raw: Optional[str]) -> Optional[List[str]]:
    if raw is None:
        return None
    return [token.strip().upper() for token in raw.split(",") if token.strip()]


def _render_text(findings: List[Finding], files_checked: int, stream) -> None:
    for finding in findings:
        print(finding.render(), file=stream)
    noun = "file" if files_checked == 1 else "files"
    if findings:
        print(
            f"{len(findings)} finding(s) in {files_checked} {noun}.",
            file=stream,
        )
    else:
        print(f"{files_checked} {noun} checked, no findings.", file=stream)


def _render_json(findings: List[Finding], files_checked: int, stream) -> None:
    counts: Dict[str, int] = {}
    for finding in findings:
        counts[finding.rule] = counts.get(finding.rule, 0) + 1
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": files_checked,
        "findings": [finding.to_dict() for finding in findings],
        "counts": dict(sorted(counts.items())),
    }
    json.dump(payload, stream, indent=2, sort_keys=False)
    print(file=stream)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in all_rules():
            scope = ", ".join(rule.scope) if rule.scope else "all code"
            print(f"{rule.rule_id}  [{scope}]  {rule.summary}")
        return 0

    paths = list(args.paths)
    if not paths:
        paths = ["src"] if Path("src").is_dir() else ["."]

    try:
        select = _split_rules(args.select)
        ignore = _split_rules(args.ignore)
        files_checked = sum(1 for _ in iter_python_files(paths))
        findings = lint_paths(paths, select=select, ignore=ignore)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        print(f"error: {exc.args[0]}; known rules: {', '.join(rule_ids())}", file=sys.stderr)
        return 2

    if args.format == "json":
        _render_json(findings, files_checked, sys.stdout)
    else:
        _render_text(findings, files_checked, sys.stdout)
    return 1 if findings else 0
