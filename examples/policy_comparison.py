"""Scheduling-policy comparison: urgency inversion in action (Section 2).

Deadline-monotonic is the optimal fixed-priority policy for aperiodic
tasks (alpha = 1).  A policy that inverts urgency — here, random
priorities — must shrink its admission budget to
alpha = D_least / D_most (Eq. 12) to stay safe.  This example runs the
same workload under:

- DM with budget 1 (the paper's evaluation configuration);
- random priorities with their proper shrunken budget (safe, admits
  less);
- random priorities *unsoundly* admitted against the DM budget (can
  miss deadlines);
- EDF as an informational comparator (not fixed-priority in the
  paper's sense, so the region theory does not cover it).

Run:  python examples/policy_comparison.py
"""

from repro import balanced_workload, run_pipeline_simulation
from repro.sim.policies import (
    DeadlineMonotonic,
    EarliestDeadlineFirst,
    RandomPriority,
)

DEADLINE_SPREAD = 0.5
#: Worst-case urgency inversion for deadlines uniform in mean*(1 +/- spread).
ALPHA_RANDOM = (1 - DEADLINE_SPREAD) / (1 + DEADLINE_SPREAD)


def main() -> None:
    workload = balanced_workload(
        num_stages=2, load=1.5, resolution=50.0, deadline_spread=DEADLINE_SPREAD
    )
    configs = [
        ("deadline-monotonic, budget 1.00", DeadlineMonotonic(), 1.0),
        (f"random priorities, budget {ALPHA_RANDOM:.2f}", RandomPriority(7), ALPHA_RANDOM),
        ("random priorities, budget 1.00 (UNSOUND)", RandomPriority(7), 1.0),
        ("EDF (outside the theory), budget 1.00", EarliestDeadlineFirst(), 1.0),
    ]
    print("=" * 74)
    print("Same workload (2 stages, 150% load), four policy configurations")
    print("=" * 74)
    print(f"{'configuration':42s} {'accept':>7s} {'util':>7s} {'miss':>9s}")
    for label, policy, alpha in configs:
        accepts, utils, misses = [], [], []
        for seed in (1, 2, 3):
            report = run_pipeline_simulation(
                workload, horizon=2000.0, seed=seed, policy=policy, alpha=alpha
            )
            accepts.append(report.accept_ratio)
            utils.append(report.average_utilization())
            misses.append(report.miss_ratio())
        print(
            f"{label:42s} {sum(accepts) / 3:7.3f} {sum(utils) / 3:7.3f} "
            f"{sum(misses) / 3:9.5f}"
        )
    print()
    print("Reading the table:")
    print(" - DM admits the most and never misses (alpha = 1 is free).")
    print(" - Random priorities with the proper alpha admit less — the")
    print("   price of urgency inversion — but are provably safe.")
    print(" - Random priorities against the DM budget can miss deadlines:")
    print("   the region test was run with the wrong alpha.")
    print(" - EDF usually performs well but has no coverage from the")
    print("   fixed-priority feasible region (its priority depends on")
    print("   arrival times).")


if __name__ == "__main__":
    main()
