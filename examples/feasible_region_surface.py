"""Exporting the feasible-region surface for plotting (paper Figure concept).

The paper's key geometric object is the bounding *surface* in the
utilization space: `sum_j f(U_j) = 1`.  This example samples

- the 2-stage boundary curve (`f(U_1) + f(U_2) = 1`), and
- the 3-stage boundary surface,

writes both to CSV for external plotting tools, and renders an ASCII
contour of the two-stage region so the shape is visible without any
plotting dependency.  The curve is concave toward the origin: each
stage's admissible utilization shrinks nonlinearly as the others load
up, pinching at the uniprocessor bound `2 - sqrt(2) ~ 0.586` on each
axis.

Run:  python examples/feasible_region_surface.py [output-directory]
"""

import csv
import sys

from repro import PipelineFeasibleRegion, UNIPROCESSOR_APERIODIC_BOUND


def export_curve_2d(directory: str) -> str:
    region = PipelineFeasibleRegion(num_stages=2)
    path = f"{directory}/feasible_region_2d.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["u1", "u2"])
        for u1, u2 in region.boundary_curve_2d(samples=201):
            writer.writerow([f"{u1:.6f}", f"{u2:.6f}"])
    return path


def export_surface_3d(directory: str) -> str:
    region = PipelineFeasibleRegion(num_stages=3)
    path = f"{directory}/feasible_region_3d.csv"
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["u1", "u2", "u3"])
        for u1, u2, u3 in region.boundary_surface_3d(samples=61):
            writer.writerow([f"{u1:.6f}", f"{u2:.6f}", f"{u3:.6f}"])
    return path


def ascii_contour() -> None:
    """Draw the 2-stage region: '#' inside, '.' outside."""
    region = PipelineFeasibleRegion(num_stages=2)
    rows = 20
    cols = 40
    top = 0.65
    print(f"   two-stage feasible region (axes 0..{top}, '#' = feasible)")
    for r in range(rows, -1, -1):
        u2 = top * r / rows
        cells = []
        for c in range(cols + 1):
            u1 = top * c / cols
            cells.append("#" if region.contains((u1, u2)) else ".")
        axis = f"{u2:4.2f} |" if r % 5 == 0 else "     |"
        print(axis + "".join(cells))
    print("     +" + "-" * (cols + 1))
    print("      0" + " " * (cols - 6) + f"{top:.2f}  (U1)")
    print(f"   each axis pinches at the uniprocessor bound "
          f"{UNIPROCESSOR_APERIODIC_BOUND:.4f}")


if __name__ == "__main__":
    directory = sys.argv[1] if len(sys.argv) > 1 else "."
    print("=" * 64)
    print("The bounding surface in utilization space")
    print("=" * 64)
    ascii_contour()
    print()
    print("CSV exports for external plotting:")
    print("  ", export_curve_2d(directory))
    print("  ", export_surface_3d(directory))
