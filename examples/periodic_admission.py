"""Periodic workloads under the aperiodic framework (paper Section 1).

"The analysis presented in the paper, while geared towards aperiodic
tasks, also provides sufficient (albeit pessimistic) feasibility
conditions for periodic workloads, since periodic arrivals are a
special case of aperiodic ones."

This example quantifies that trade-off on a single resource: a family
of periodic task sets is pushed through every admission test in the
repository — the aperiodic feasible region (coincident-release worst
case), Liu & Layland, the hyperbolic bound, and exact response-time
analysis — showing where each one stops accepting.

Run:  python examples/periodic_admission.py
"""

from repro.analysis.comparison import (
    PeriodicTaskParams,
    compare_periodic_admission,
)


def sweep() -> None:
    print("=" * 72)
    print("Two implicit-deadline tasks (P = 10 and 20), utilization swept")
    print("=" * 72)
    print(f"{'per-task U':>11s} {'total U':>8s} | {'aperiodic':>9s} {'L&L':>5s} "
          f"{'hyperb.':>7s} {'RTA':>5s}")
    for per_task_u in (0.10, 0.20, 0.25, 0.30, 0.35, 0.41, 0.45, 0.50):
        tasks = [
            PeriodicTaskParams(period=10.0, wcet=10.0 * per_task_u),
            PeriodicTaskParams(period=20.0, wcet=20.0 * per_task_u),
        ]
        result = compare_periodic_admission(tasks)
        mark = lambda ok: "yes" if ok else " - "
        print(
            f"{per_task_u:>11.2f} {result.total_utilization:>8.2f} | "
            f"{mark(result.aperiodic_region):>9s} {mark(result.liu_layland):>5s} "
            f"{mark(result.hyperbolic):>7s} {mark(result.rta):>5s}"
        )
    print()
    print("Reading the table (each test is sufficient; RTA is exact):")
    print(" - The aperiodic region stops first (~0.29 per task: the")
    print("   coincident-release peak hits 2 - sqrt(2) ~ 0.586) — the price")
    print("   of assuming nothing about inter-arrival times.")
    print(" - Liu & Layland accepts until total U ~ 0.83 (n=2 bound),")
    print("   the hyperbolic bound a little beyond, RTA the furthest.")
    print()
    print("That pessimism is what Section 5 spends deliberately: reserving")
    print("synthetic utilization for periodic tasks buys the ability to")
    print("admit *unpredictable aperiodic* arrivals with hard guarantees.")


def constrained_deadlines() -> None:
    print()
    print("=" * 72)
    print("Constrained deadlines (D < P): only RTA still applies")
    print("=" * 72)
    tasks = [
        PeriodicTaskParams(period=10.0, wcet=1.0, deadline=2.0),
        PeriodicTaskParams(period=50.0, wcet=3.0, deadline=6.0),
    ]
    result = compare_periodic_admission(tasks)
    print(f"synthetic peak (sum C/D): {result.synthetic_peak:.3f}")
    print(f"aperiodic region: {result.aperiodic_region}")
    print(f"RTA verdict: {result.rta}, worst response times: "
          f"{tuple(result.worst_response_times)}")
    print("The utilization-based periodic bounds assume implicit deadlines;")
    print("the aperiodic region and RTA handle constrained deadlines")
    print("natively (the region uses C/D, not C/P).")


if __name__ == "__main__":
    sweep()
    constrained_deadlines()
