"""Quickstart: the feasible region and O(N) admission control in 5 minutes.

Walks the core API end to end:

1. the stage delay factor f(U) and the single-resource bound;
2. a multi-stage feasible region and its geometry;
3. an admission controller processing an aperiodic arrival sequence;
4. a full discrete-event simulation of an admission-controlled pipeline.

Run:  python examples/quickstart.py
"""

from repro import (
    PipelineAdmissionController,
    PipelineFeasibleRegion,
    UNIPROCESSOR_APERIODIC_BOUND,
    balanced_workload,
    make_task,
    run_pipeline_simulation,
    stage_delay_factor,
)


def part1_the_bound() -> None:
    print("=" * 64)
    print("1. The stage delay factor f(U) = U(1 - U/2)/(1 - U)")
    print("=" * 64)
    for u in (0.1, 0.3, 0.5, UNIPROCESSOR_APERIODIC_BOUND):
        print(f"   f({u:.4f}) = {stage_delay_factor(u):.4f}")
    print(
        f"   single-resource bound: f(U) = 1 at U = 2 - sqrt(2) "
        f"= {UNIPROCESSOR_APERIODIC_BOUND:.4f}"
    )
    print("   (the uniprocessor aperiodic bound of Abdelzaher & Lu)\n")


def part2_region_geometry() -> None:
    print("=" * 64)
    print("2. The feasible region of a 3-stage pipeline: sum_j f(U_j) <= 1")
    print("=" * 64)
    region = PipelineFeasibleRegion(num_stages=3)
    point = (0.4, 0.25, 0.1)  # the paper's TSCE reservation
    print(f"   region value at {point}: {region.value(point):.4f} (budget 1.0)")
    print(f"   inside region: {region.contains(point)}")
    print(f"   margin: {region.margin(point):.4f}")
    print(f"   headroom of stage 2 alone: {region.stage_headroom(point, 1):.4f}")
    print(f"   symmetric per-stage bound: {region.uniform_bound():.4f}\n")


def part3_admission_control() -> None:
    print("=" * 64)
    print("3. O(N) admission control with deadline expiry and idle reset")
    print("=" * 64)
    controller = PipelineAdmissionController(num_stages=2)
    arrivals = [
        make_task(0.0, deadline=10.0, computation_times=[2.0, 1.0]),
        make_task(0.5, deadline=4.0, computation_times=[1.0, 1.0]),
        make_task(1.0, deadline=2.0, computation_times=[0.9, 0.9]),
    ]
    for task in arrivals:
        decision = controller.request(task, now=task.arrival_time)
        verdict = "ADMIT " if decision.admitted else "reject"
        print(
            f"   t={task.arrival_time:4.1f}  task {task.task_id} "
            f"(D={task.deadline:4.1f}, C={task.computation_times}) -> {verdict}"
            f"  region value now {decision.region_value:.3f}"
        )
    # A departed task's contribution is dropped at the next idle instant.
    first = arrivals[0]
    controller.notify_subtask_departure(first.task_id, stage=0)
    released = controller.notify_stage_idle(0)
    print(f"   idle reset on stage 0 released {released:.3f} of utilization\n")


def part4_simulation() -> None:
    print("=" * 64)
    print("4. Simulated 3-stage pipeline at 120% offered load")
    print("=" * 64)
    workload = balanced_workload(num_stages=3, load=1.2, resolution=100.0)
    report = run_pipeline_simulation(workload, horizon=2000.0, seed=1)
    print(f"   offered tasks:      {report.generated}")
    print(f"   admitted:           {report.admitted} ({report.accept_ratio:.1%})")
    print(f"   deadline misses:    {report.miss_ratio():.4%}  (exact AC: always 0)")
    print(f"   stage utilizations: {[f'{u:.3f}' for u in report.utilizations()]}")
    print(f"   mean response time: {report.mean_response_time():.1f} time units\n")


if __name__ == "__main__":
    part1_the_bound()
    part2_region_geometry()
    part3_admission_control()
    part4_simulation()
