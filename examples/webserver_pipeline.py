"""Multi-tier web server under admission control (the intro's motivation).

Requests traverse front-end -> business-logic -> database tiers with
per-class response-time guarantees.  The example:

1. sizes the deployment statically (offered tier loads, region
   headroom, maximum sustainable request rate);
2. simulates the server at increasing arrival rates, showing that the
   admission controller sheds exactly enough load to keep every
   admitted request inside its deadline — no misses, ever;
3. reports per-class accept ratios.

Run:  python examples/webserver_pipeline.py
"""

from repro.apps.webserver import DEFAULT_REQUEST_MIX, WebServerModel


def static_sizing() -> None:
    print("=" * 70)
    print("Static sizing of the three-tier deployment")
    print("=" * 70)
    print(f"{'class':15s} {'deadline':>9s} {'E[cost] ms':>11s} {'resolution':>11s}")
    for cls in DEFAULT_REQUEST_MIX:
        print(
            f"{cls.name:15s} {cls.deadline * 1000:7.0f}ms "
            f"{cls.mean_total_cost * 1000:11.2f} {cls.resolution:11.1f}"
        )
    model = WebServerModel(arrival_rate=100.0)
    loads = model.offered_tier_loads()
    print(f"\noffered tier loads at 100 req/s: "
          f"{[f'{u:.3f}' for u in loads]}")
    print(f"region headroom at the mean operating point: "
          f"{model.static_headroom():.4f}")
    print(f"max request rate with a feasible mean operating point: "
          f"{model.max_arrival_rate_within_region():.0f} req/s\n")


def simulated_scaling() -> None:
    print("=" * 70)
    print("Simulated scaling sweep (60 simulated seconds per point)")
    print("=" * 70)
    print(f"{'req/s':>8s} {'accept':>8s} {'miss':>8s} "
          f"{'front':>7s} {'logic':>7s} {'db':>7s}")
    for rate in (50, 100, 150, 200, 300):
        model = WebServerModel(arrival_rate=float(rate))
        report = model.simulate(horizon=60.0, seed=4)
        u = report.utilizations()
        print(
            f"{rate:8d} {report.accept_ratio:8.3f} {report.miss_ratio():8.4f} "
            f"{u[0]:7.3f} {u[1]:7.3f} {u[2]:7.3f}"
        )
    print("\nNote: misses stay at zero at every rate — overload turns into")
    print("rejections, never into broken guarantees for admitted requests.\n")


def per_class_breakdown() -> None:
    print("=" * 70)
    print("Per-class accept ratios under overload (300 req/s)")
    print("=" * 70)
    model = WebServerModel(arrival_rate=300.0)
    report = model.simulate(horizon=60.0, seed=4)
    for name, ratio in sorted(model.per_class_accept_ratios(report).items()):
        print(f"   {name:15s} {ratio:.3f}")
    print("\nCheap static requests are easiest to admit; transactional")
    print("requests carry the largest database demand per deadline.\n")


if __name__ == "__main__":
    static_sizing()
    simulated_scaling()
    per_class_breakdown()
