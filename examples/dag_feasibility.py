"""Arbitrary task graphs and Theorem 2 (paper Section 3.3, Figure 3).

Builds the paper's example graph — R1 -> (R2 | R3) -> R4 — both as a
series/parallel delay expression (the way Eq. 16 is written) and as an
explicit DAG, evaluates the feasible region, demonstrates the shared-
processor remark (subtasks 1 and 4 on one CPU), and finishes with a
simulated DAG workload under Theorem-2 admission control.

Run:  python examples/dag_feasibility.py
"""

from repro import TaskGraph, leaf, par, seq
from repro.sim.graphrun import GraphPipelineSimulation, GraphTask


def eq16_example() -> None:
    print("=" * 70)
    print("Eq. 16: the Figure-3 task graph R1 -> (R2 | R3) -> R4")
    print("=" * 70)
    expression = seq(leaf("R1"), par(leaf("R2"), leaf("R3")), leaf("R4"))
    utils = {"R1": 0.2, "R2": 0.3, "R3": 0.1, "R4": 0.2}
    print(f"   per-resource synthetic utilization: {utils}")
    print(f"   d(f(U_1), max(f(U_2), f(U_3)), f(U_4)) = "
          f"{expression.region_value(utils):.4f}")
    print(f"   feasible (<= alpha = 1): {expression.is_feasible(utils)}")

    graph = TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )
    print(f"   critical-path evaluation agrees: "
          f"{graph.region_value(utils):.4f}")
    delays = {1: 1.0, 2: 5.0, 3: 2.0, 4: 3.0}
    print(f"   with per-stage delays {delays}: end-to-end = "
          f"{graph.critical_path_delay(delays):.1f} along path "
          f"{graph.critical_path(delays)}\n")


def shared_processor_remark() -> None:
    print("=" * 70)
    print("Shared processors: subtasks 1 and 4 on the same CPU")
    print("=" * 70)
    graph = TaskGraph(
        resource_of={1: "P1", 2: "R2", 3: "R3", 4: "P1"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )
    utils = {"P1": 0.2, "R2": 0.3, "R3": 0.1}
    print("   U_4 = U_1 is the synthetic utilization of processor P1;")
    print(f"   the region value is {graph.region_value(utils):.4f} "
          f"(P1's term appears on both ends of the path)\n")


def simulated_dag_workload() -> None:
    print("=" * 70)
    print("Simulated diamond-DAG workload with Theorem-2 admission")
    print("=" * 70)
    import random

    graph = TaskGraph(
        resource_of={1: "R1", 2: "R2", 3: "R3", 4: "R4"},
        edges=[(1, 2), (1, 3), (2, 4), (3, 4)],
    )
    sim = GraphPipelineSimulation(resources=["R1", "R2", "R3", "R4"])
    rng = random.Random(7)
    t = 0.0
    for _ in range(500):
        t += rng.expovariate(0.8)
        deadline = rng.uniform(20.0, 60.0)
        costs = {k: rng.expovariate(1.0 / 0.8) for k in (1, 2, 3, 4)}
        sim.offer_at(
            GraphTask.create(
                arrival_time=t, deadline=deadline, graph=graph, costs=costs
            )
        )
    report = sim.run(t + 100.0)
    print(f"   offered:   {report.generated}")
    print(f"   admitted:  {report.admitted} ({report.accept_ratio:.1%})")
    print(f"   misses:    {report.miss_ratio():.4%} (always 0 under exact AC)")
    print(f"   resource utilizations: "
          f"{[f'{u:.3f}' for u in report.utilizations()]}\n")


if __name__ == "__main__":
    eq16_example()
    shared_processor_remark()
    simulated_dag_workload()
