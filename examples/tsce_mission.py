"""The Total Ship Computing Environment scenario (paper Section 5, Table 1).

Reproduces the paper's two certification questions for the shipboard
mission-execution system:

1. Reserve synthetic utilization for Weapon Detection, Weapon Targeting
   and UAV Video, and verify the reserved vector satisfies Eq. 13
   (paper: per-stage reservations 0.4 / 0.25 / 0.1, region value 0.93).
2. Admit Target Tracking tasks dynamically on top of the reservation —
   each arrival may wait up to 200 ms — and find how many concurrent
   tracks the system sustains (paper: ~550, stage 1 at ~95%).

Run:  python examples/tsce_mission.py
"""

from repro.apps.tsce import (
    simulate_self_defense_scenario,
    simulate_tracking_capacity,
    tsce_critical_tasks,
    tsce_reservation,
)
from repro.core.reservation import aperiodic_capacity


def static_certification() -> None:
    print("=" * 70)
    print("Static certification: are the critical tasks schedulable together?")
    print("=" * 70)
    print(f"{'task':20s} {'D':>8s} {'stage1':>8s} {'stage2':>8s} {'stage3':>8s}")
    for task in tsce_critical_tasks():
        contributions = [task.stage_contribution(j) for j in range(3)]
        print(
            f"{task.name:20s} {task.deadline * 1000:6.0f}ms "
            + " ".join(f"{c:8.3f}" for c in contributions)
        )
    plan = tsce_reservation()
    print(f"\nreserved per-stage synthetic utilization: "
          f"{tuple(round(u, 3) for u in plan.reserved)}")
    print("  (stage 3 hosts separate consoles: contributions combine by max)")
    print(f"Eq. 13 region value: {plan.region_value:.4f}  (paper: 0.93)")
    print(f"feasible: {plan.feasible} — headroom for dynamic load: "
          f"{plan.headroom:.4f}\n")


def dynamic_capacity() -> None:
    print("=" * 70)
    print("Dynamic capacity: concurrent Target Tracking tasks (200 ms wait)")
    print("=" * 70)
    print(f"{'tracks':>8s} {'rejection':>10s} {'miss':>8s} "
          f"{'stage1':>8s} {'stage2':>8s} {'stage3':>8s}")
    sustained = 0
    for tracks in (200, 400, 500, 550, 600, 700):
        result = simulate_tracking_capacity(tracks, horizon=15.0, seed=2)
        u = result.stage_utilizations
        print(
            f"{tracks:8d} {result.rejection_ratio:10.4f} {result.miss_ratio:8.4f} "
            f"{u[0]:8.3f} {u[1]:8.3f} {u[2]:8.3f}"
        )
        if result.rejection_ratio <= 0.01:
            sustained = tracks
    print(f"\nsustained population: ~{sustained} tracks (paper: ~550)")
    print("stage 1 is the bottleneck, operating near 95% — \"virtually at")
    print("capacity\" thanks to the idle-reset rule and the admission wait.\n")


def reset_rule_value() -> None:
    print("=" * 70)
    print("What the idle-reset rule buys: static vs simulated capacity")
    print("=" * 70)
    plan = tsce_reservation()
    static = aperiodic_capacity(
        plan, deadline=1.0, computation_times=[0.001, 0.0, 0.0]
    )
    print(f"static capacity (tasks concurrently inside the region): {static}")
    print("simulated sustained population (with resets + 200 ms wait): ~550")
    print("the reset rule recycles synthetic utilization at every idle")
    print("instant, multiplying effective capacity by >10x here.\n")


def self_defense_mode() -> None:
    print("=" * 70)
    print("Dynamic importance: urgent self-defense arrivals shed routine load")
    print("=" * 70)
    result = simulate_self_defense_scenario(horizon=10.0, seed=1)
    print(f"urgent tasks admitted:        {result.urgent_admitted}")
    print(f"urgent deadline misses:       {result.urgent_misses} (hard: must be 0)")
    print(f"routine tasks shed:           {result.shed_tasks}")
    print(f"surviving routine miss ratio: {result.tracking_miss_ratio:.4f}")
    print("Scheduling priority (deadline-monotonic) stays decoupled from")
    print("semantic importance; the admission controller decides what to")
    print("shed at overload — the paper's architectural argument.\n")


if __name__ == "__main__":
    static_certification()
    dynamic_capacity()
    reset_rule_value()
    self_defense_mode()
